"""U-Net on fastMRI-style data (paper workload: U-Net / fastMRI).

This workload carries the knobs exercised by three case studies:

* ``channels_last`` — store activations (and norm weights) in NHWC to remove
  the ``nchwToNhwc``/``nhwcToNchw`` conversion kernels (case study 6.2);
* ``num_workers`` / ``physical_cores`` — the data-loading thread configuration
  whose over-subscription the CPU latency analysis flags (case study 6.4);
* instance normalization — whose warp-32-tuned kernel template under-utilises
  AMD GPUs (case study 6.5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...framework import functional as F
from ...framework.dataloader import DataLoader
from ...framework.eager import EagerEngine
from ...framework.modules import (
    Adam,
    Conv2d,
    InstanceNorm2d,
    MaxPool2d,
    Module,
    ModuleList,
    MSELoss,
    Upsample,
)
from ...framework.tensor import CHANNELS_FIRST, CHANNELS_LAST, Tensor
from ...framework.threads import ThreadContext
from .. import data
from ..base import Workload


class ConvBlock(Module):
    """Two 3x3 convolutions with instance norm and ReLU."""

    def __init__(self, in_channels: int, out_channels: int,
                 channels_last_weights: bool = False, name: str = "conv_block") -> None:
        super().__init__(name)
        self.conv1 = Conv2d(in_channels, out_channels, 3, name="conv1")
        self.norm1 = InstanceNorm2d(out_channels, channels_last_weights, name="instance_norm1")
        self.conv2 = Conv2d(out_channels, out_channels, 3, name="conv2")
        self.norm2 = InstanceNorm2d(out_channels, channels_last_weights, name="instance_norm2")

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.norm1(self.conv1(x)))
        return F.relu(self.norm2(self.conv2(x)))


class UNet(Module):
    """Encoder/decoder U-Net with skip connections."""

    def __init__(self, base_channels: int = 32, depth: int = 3,
                 channels_last_weights: bool = False, name: str = "unet") -> None:
        super().__init__(name)
        self.depth = depth
        encoders: List[Module] = []
        channels = 1
        widths = []
        for level in range(depth):
            out_channels = base_channels * (2 ** level)
            encoders.append(ConvBlock(channels, out_channels, channels_last_weights,
                                      name=f"encoder{level}"))
            widths.append(out_channels)
            channels = out_channels
        self.encoders = ModuleList(encoders, name="encoders")
        self.pool = MaxPool2d(2, name="pool")
        self.bottleneck = ConvBlock(channels, channels * 2, channels_last_weights,
                                    name="bottleneck")
        decoders: List[Module] = []
        channels = channels * 2
        for level in reversed(range(depth)):
            out_channels = widths[level]
            decoders.append(ConvBlock(channels + out_channels, out_channels,
                                      channels_last_weights, name=f"decoder{level}"))
            channels = out_channels
        self.decoders = ModuleList(decoders, name="decoders")
        self.upsample = Upsample(2, name="upsample")
        self.head = Conv2d(channels, 1, 1, name="head")

    def forward(self, x: Tensor) -> Tensor:
        skips = []
        for encoder in self.encoders:
            x = encoder(x)
            skips.append(x)
            x = self.pool(x)
        x = self.bottleneck(x)
        for decoder, skip in zip(self.decoders, reversed(skips)):
            x = self.upsample(x)
            x = F.cat([x, skip], dim=1)
            x = decoder(x)
        return self.head(x)


def data_selection(worker: ThreadContext, cpu_seconds: float) -> None:
    """The input-pipeline function charged with loading and filtering samples.

    Case study 6.4's CPU latency analysis points here: this user-level function
    accounts for most of the CPU time of the first iteration while the GPU sits
    idle.  The simulated work simply advances the worker's CPU clock.
    """
    worker.cpu_clock.advance(cpu_seconds)


class UNetWorkload(Workload):
    """fastMRI-style reconstruction training."""

    name = "UNet"
    dataset = "fastMRI"
    training = True

    def __init__(self, batch_size: int = 4, image_size: int = 160,
                 channels_last: bool = False, num_workers: int = 16,
                 physical_cores: int = 6, initial_load_cpu_seconds: float = 0.0,
                 **options) -> None:
        super().__init__(**options)
        self.batch_size = batch_size
        self.image_size = image_size
        self.channels_last = channels_last
        self.num_workers = num_workers
        self.physical_cores = physical_cores
        self.initial_load_cpu_seconds = initial_load_cpu_seconds
        self.loss_fn = None
        self.loader: Optional[DataLoader] = None

    def build(self, engine: EagerEngine) -> None:
        self.model = UNet(channels_last_weights=self.channels_last)
        self.loss_fn = MSELoss()
        self.optimizer = Adam(self.model.parameters(), lr=1e-3)
        if self.initial_load_cpu_seconds > 0:
            self.loader = DataLoader(
                batch_factory=lambda index: list(self._raw_batch()),
                num_batches=1_000_000,
                engine=engine,
                num_workers=self.num_workers,
                physical_cores=self.physical_cores,
                initial_load_cpu_seconds=self.initial_load_cpu_seconds,
            )

    def _raw_batch(self):
        memory_format = CHANNELS_LAST if self.channels_last else CHANNELS_FIRST
        return data.mri_batch(self.batch_size, self.image_size, self.image_size,
                              memory_format=memory_format)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        if self.loader is not None and iteration == 0:
            self.loader.initial_load(data_selection)
        images, targets = self._raw_batch()
        return [images, targets]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        images, targets = batch
        reconstruction = self.model(images)
        return self.loss_fn(reconstruction, targets)
