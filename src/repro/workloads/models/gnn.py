"""GNN on OGBG-MOLPCBA-style graphs (paper workload: GNN / OGBG-MOLPCBA).

The node-feature lookup uses ``aten::index`` with duplicated node IDs (atoms
reappear across molecules in a batched graph), so the GNN exhibits the same —
smaller — deterministic-backward imbalance that case study 6.1 also fixes by
switching to ``aten::index_select``.
"""

from __future__ import annotations

from typing import Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import CrossEntropyLoss, Linear, Module, ModuleList, SGD
from ...framework.tensor import Tensor, parameter
from .. import data
from ..base import Workload


class MessagePassingLayer(Module):
    """One message-passing step: gather, transform, scatter-add, update."""

    def __init__(self, dim: int, name: str = "mp_layer") -> None:
        super().__init__(name)
        self.message = Linear(dim, dim, name="message")
        self.update = Linear(dim, dim, name="update")

    def forward(self, node_states: Tensor, edge_index: Tensor) -> Tensor:
        gathered = F.index_select(node_states, edge_index)
        messages = F.relu(self.message(gathered))
        aggregated = F.scatter_add(messages, edge_index, node_states)
        return F.relu(self.update(aggregated))


class GNN(Module):
    """Embedding lookup + message passing + prediction head."""

    def __init__(self, num_node_types: int = 120_000, dim: int = 128,
                 num_layers: int = 4, num_classes: int = 128,
                 use_index_select: bool = False, name: str = "gnn") -> None:
        super().__init__(name)
        self.use_index_select = use_index_select
        self.node_embedding = self.register_parameter(
            "node_embedding", parameter((num_node_types, dim)))
        self.layers = ModuleList(
            [MessagePassingLayer(dim, name=f"layer{i}") for i in range(num_layers)],
            name="message_passing")
        self.head = Linear(dim, num_classes, name="head")

    def forward(self, node_ids: Tensor, edge_index: Tensor) -> Tensor:
        if self.use_index_select:
            states = F.index_select(self.node_embedding, node_ids)
        else:
            states = F.index(self.node_embedding, node_ids)
        for layer in self.layers:
            states = layer(states, edge_index)
        return self.head(states)


class GNNWorkload(Workload):
    """Molecular property prediction on batched graphs."""

    name = "GNN"
    dataset = "OGBG-MOLPCBA"
    training = True

    def __init__(self, num_nodes: int = 4096, num_edges: int = 16384,
                 dim: int = 128, use_index_select: bool = False,
                 duplicate_fraction: float = 0.6, **options) -> None:
        super().__init__(**options)
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.dim = dim
        self.use_index_select = use_index_select
        self.duplicate_fraction = duplicate_fraction
        self.loss_fn = None

    def build(self, engine: EagerEngine) -> None:
        self.model = GNN(dim=self.dim, use_index_select=self.use_index_select)
        self.loss_fn = CrossEntropyLoss()
        self.optimizer = SGD(self.model.parameters(), lr=0.01)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        node_ids, _features, edge_index, labels = data.graph_batch(
            self.num_nodes, self.num_edges, self.dim,
            duplicate_fraction=self.duplicate_fraction)
        return [node_ids, edge_index, labels]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        node_ids, edge_index, labels = batch
        logits = self.model(node_ids, edge_index)
        return self.loss_fn(logits, labels)
