"""LLM inference workloads: Llama 3, Gemma and nanoGPT.

All three run low-precision (float16) single-prompt inference, launching many
small kernels per token — the regime where profiling overhead is highest in
Figure 6 and where the fine-grained stall analysis of case study 6.7 finds the
``torch.to`` conversion kernels in ``LlamaRMSNorm`` stalling on constant-memory
loads and math dependencies.  ``fast_conversion=True`` applies the suggested
optimisation (vectorised, fused conversions).
"""

from __future__ import annotations

from typing import Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import (
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiheadAttention,
    RMSNorm,
)
from ...framework.tensor import Tensor
from .. import data
from ..base import Workload


class LlamaBlock(Module):
    """Pre-norm attention + SwiGLU-style MLP with RMSNorm (LlamaRMSNorm)."""

    def __init__(self, dim: int, num_heads: int, fast_conversion: bool = False,
                 name: str = "llama_block") -> None:
        super().__init__(name)
        self.input_norm = RMSNorm(dim, fast_conversion=fast_conversion, name="LlamaRMSNorm")
        self.attention = MultiheadAttention(dim, num_heads, name="attention")
        self.post_norm = RMSNorm(dim, fast_conversion=fast_conversion, name="LlamaRMSNorm_post")
        self.mlp = FeedForward(dim, dim * 4, activation="silu", name="mlp")

    def forward(self, x: Tensor) -> Tensor:
        x = F.add(x, self.attention(self.input_norm(x)))
        return F.add(x, self.mlp(self.post_norm(x)))


class GemmaBlock(LlamaBlock):
    """Gemma uses GELU MLPs but otherwise shares the Llama block structure."""

    def __init__(self, dim: int, num_heads: int, fast_conversion: bool = False,
                 name: str = "gemma_block") -> None:
        super().__init__(dim, num_heads, fast_conversion, name)
        self.mlp = FeedForward(dim, dim * 4, activation="gelu", name="mlp")


class GPTBlock(Module):
    """nanoGPT block: LayerNorm + attention + GELU MLP."""

    def __init__(self, dim: int, num_heads: int, name: str = "gpt_block") -> None:
        super().__init__(name)
        self.norm1 = LayerNorm(dim, name="ln1")
        self.attention = MultiheadAttention(dim, num_heads, name="attention")
        self.norm2 = LayerNorm(dim, name="ln2")
        self.mlp = FeedForward(dim, dim * 4, activation="gelu", name="mlp")

    def forward(self, x: Tensor) -> Tensor:
        x = F.add(x, self.attention(self.norm1(x)))
        return F.add(x, self.mlp(self.norm2(x)))


class CausalLM(Module):
    """Token embedding + decoder blocks + LM head, in low precision."""

    def __init__(self, block_cls, vocab_size: int, dim: int, num_heads: int,
                 num_layers: int, dtype: str = "float16",
                 fast_conversion: bool = False, name: str = "causal_lm") -> None:
        super().__init__(name)
        self.dtype = dtype
        self.token_embedding = Embedding(vocab_size, dim, name="token_embedding")
        if block_cls is GPTBlock:
            blocks = [block_cls(dim, num_heads, name=f"block{i}") for i in range(num_layers)]
        else:
            blocks = [block_cls(dim, num_heads, fast_conversion, name=f"block{i}")
                      for i in range(num_layers)]
        self.blocks = ModuleList(blocks, name="blocks")
        self.final_norm = RMSNorm(dim, fast_conversion=fast_conversion, name="final_norm")
        self.lm_head = Linear(dim, vocab_size, bias=False, name="lm_head")

    def forward(self, prompt_tokens: Tensor) -> Tensor:
        hidden = self.token_embedding(prompt_tokens)
        hidden = F.to(hidden, self.dtype)
        for block in self.blocks:
            hidden = block(hidden)
        hidden = self.final_norm(hidden)
        return self.lm_head(hidden)


class _LLMInferenceWorkload(Workload):
    """Shared driver for the three LLM inference workloads."""

    training = False
    block_cls = LlamaBlock
    vocab_size = 32000
    dim = 512
    num_heads = 8
    num_layers = 6

    def __init__(self, prompt_length: int = 128, decode_tokens: int = 4,
                 dtype: str = "float16", fast_conversion: bool = False, **options) -> None:
        super().__init__(**options)
        self.prompt_length = prompt_length
        self.decode_tokens = decode_tokens
        self.dtype = dtype
        self.fast_conversion = fast_conversion

    def build(self, engine: EagerEngine) -> None:
        self.model = CausalLM(self.block_cls, self.vocab_size, self.dim, self.num_heads,
                              self.num_layers, dtype=self.dtype,
                              fast_conversion=self.fast_conversion,
                              name=self.name.lower())

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        return [data.prompt_batch(prompt_length=self.prompt_length, dtype=self.dtype)]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        (prompt,) = batch
        logits = self.model(prompt)
        return logits

    def run_iteration(self, engine: EagerEngine, iteration: int = 0) -> None:
        """One inference "iteration": prefill plus a few decode steps."""
        batch = self.make_batch(engine, iteration)
        with engine.no_grad():
            self.forward_loss(engine, batch)
            for _step in range(self.decode_tokens):
                single_token = data.prompt_batch(prompt_length=1, dtype=self.dtype)
                self.forward_loss(engine, [single_token])


class Llama3Workload(_LLMInferenceWorkload):
    name = "Llama3-8B"
    dataset = "Sample Prompt"
    block_cls = LlamaBlock
    num_layers = 8


class GemmaWorkload(_LLMInferenceWorkload):
    name = "Gemma-7B"
    dataset = "Sample Prompt"
    block_cls = GemmaBlock
    num_layers = 7


class NanoGPTWorkload(_LLMInferenceWorkload):
    name = "NanoGPT"
    dataset = "Sample Prompt"
    block_cls = GPTBlock
    vocab_size = 50304
    dim = 384
    num_heads = 6
    num_layers = 6
