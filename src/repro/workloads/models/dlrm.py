"""DLRM-small on Criteo-style data (paper workload: DLRM-small / Criteo 1TB).

The embedding lookup intentionally uses PyTorch-style advanced indexing
(``embedding_table[idx_lookup]`` → ``aten::index``): with the heavily
duplicated Criteo indices its *deterministic* backward kernel serializes and
dominates GPU time, which is exactly what case study 6.1 finds and fixes by
switching to ``aten::index_select``.
"""

from __future__ import annotations

from typing import List, Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import CrossEntropyLoss, Linear, Module, ModuleList, ReLU, SGD, Sequential
from ...framework.tensor import Tensor, parameter
from .. import data
from ..base import Workload


class EmbeddingTable(Module):
    """One categorical embedding table looked up with advanced indexing."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 use_index_select: bool = False, name: str = "embedding_table") -> None:
        super().__init__(name)
        self.use_index_select = use_index_select
        self.weight = self.register_parameter(
            "weight", parameter((num_embeddings, embedding_dim)))

    def forward(self, idx_lookup: Tensor) -> Tensor:
        if self.use_index_select:
            return F.index_select(self.weight, idx_lookup)
        # embedding_table[idx_lookup]: aten::index, deterministic backward.
        return F.index(self.weight, idx_lookup)


class MLP(Module):
    def __init__(self, dims: Sequence[int], name: str = "mlp") -> None:
        super().__init__(name)
        layers: List[Module] = []
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], name=f"linear{i}"))
            layers.append(ReLU(name=f"relu{i}"))
        self.layers = Sequential(*layers, name="layers")

    def forward(self, x: Tensor) -> Tensor:
        return self.layers(x)


class DLRM(Module):
    """Bottom MLP + embedding tables + feature interaction + top MLP."""

    def __init__(self, dense_features: int = 13, embedding_dim: int = 64,
                 num_tables: int = 8, rows_per_table: int = 1_000_000,
                 use_index_select: bool = False, name: str = "dlrm") -> None:
        super().__init__(name)
        self.bottom_mlp = MLP((dense_features, 256, embedding_dim), name="bottom_mlp")
        self.tables = ModuleList(
            [EmbeddingTable(rows_per_table, embedding_dim, use_index_select,
                            name=f"table{i}") for i in range(num_tables)],
            name="embedding_tables")
        interaction_dim = embedding_dim * (num_tables + 1)
        self.top_mlp = MLP((interaction_dim, 512, 256, 2), name="top_mlp")

    def forward(self, dense: Tensor, categorical: Sequence[Tensor]) -> Tensor:
        dense_embedding = self.bottom_mlp(dense)
        lookups = [table(indices) for table, indices in zip(self.tables, categorical)]
        interacted = F.cat([dense_embedding] + lookups, dim=1)
        return self.top_mlp(interacted)


class DLRMWorkload(Workload):
    """Click-through-rate training on Criteo-style categorical data."""

    name = "DLRM-small"
    dataset = "Criteo 1TB"
    training = True

    def __init__(self, batch_size: int = 2048, num_tables: int = 8,
                 embedding_dim: int = 64, use_index_select: bool = False,
                 duplicate_fraction: float = 0.85, **options) -> None:
        super().__init__(**options)
        self.batch_size = batch_size
        self.num_tables = num_tables
        self.embedding_dim = embedding_dim
        self.use_index_select = use_index_select
        self.duplicate_fraction = duplicate_fraction
        self.loss_fn = None

    def build(self, engine: EagerEngine) -> None:
        self.model = DLRM(num_tables=self.num_tables, embedding_dim=self.embedding_dim,
                          use_index_select=self.use_index_select)
        self.loss_fn = CrossEntropyLoss()
        self.optimizer = SGD(self.model.parameters(), lr=0.05)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        dense, categorical, labels = data.criteo_batch(
            self.batch_size, num_tables=self.num_tables,
            duplicate_fraction=self.duplicate_fraction)
        return [dense, *categorical, labels]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        dense = batch[0]
        categorical = list(batch[1:-1])
        labels = batch[-1]
        logits = self.model(dense, categorical)
        return self.loss_fn(logits, labels)
