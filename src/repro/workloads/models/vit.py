"""Vision Transformer on ImageNet-style data (paper workload: ViT / ImageNet)."""

from __future__ import annotations

from typing import Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import (
    Adam,
    Conv2d,
    CrossEntropyLoss,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    TransformerBlock,
)
from ...framework.tensor import Tensor
from .. import data
from ..base import Workload


class VisionTransformer(Module):
    """Patchify with a strided convolution, then standard transformer blocks."""

    def __init__(self, image_size: int = 224, patch_size: int = 16, dim: int = 384,
                 num_heads: int = 6, num_layers: int = 6, num_classes: int = 1000,
                 name: str = "vit") -> None:
        super().__init__(name)
        self.patch_size = patch_size
        self.dim = dim
        self.num_patches = (image_size // patch_size) ** 2
        self.patch_embedding = Conv2d(3, dim, patch_size, stride=patch_size,
                                      padding=0, name="patch_embedding")
        self.blocks = ModuleList(
            [TransformerBlock(dim, num_heads, name=f"block{i}") for i in range(num_layers)],
            name="blocks")
        self.norm = LayerNorm(dim, name="final_norm")
        self.head = Linear(dim, num_classes, name="head")

    def forward(self, images: Tensor) -> Tensor:
        patches = self.patch_embedding(images)
        batch = patches.shape[0]
        tokens = F.reshape(patches, (batch, self.num_patches, self.dim))
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        pooled = F.mean(tokens)
        pooled = F.reshape(pooled, (1, 1))
        cls = F.reshape(tokens, (batch * self.num_patches, self.dim))
        return self.head(cls)


class ViTWorkload(Workload):
    """ViT image-classification training."""

    name = "ViT"
    dataset = "ImageNet"
    training = True

    def __init__(self, batch_size: int = 8, image_size: int = 224,
                 num_layers: int = 6, **options) -> None:
        super().__init__(**options)
        self.batch_size = batch_size
        self.image_size = image_size
        self.num_layers = num_layers
        self.loss_fn = None

    def build(self, engine: EagerEngine) -> None:
        self.model = VisionTransformer(image_size=self.image_size, num_layers=self.num_layers)
        self.loss_fn = CrossEntropyLoss()
        self.optimizer = Adam(self.model.parameters(), lr=3e-4)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        images = data.image_batch(self.batch_size, height=self.image_size,
                                  width=self.image_size)
        labels = data.label_batch(self.batch_size * (self.image_size // 16) ** 2)
        return [images, labels]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        images, labels = batch
        logits = self.model(images)
        return self.loss_fn(logits, labels)
