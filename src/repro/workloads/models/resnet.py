"""ResNet on ImageNet-style data (paper workload: ResNet / ImageNet)."""

from __future__ import annotations

from typing import List, Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import (
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    SGD,
)
from ...framework.tensor import Tensor
from .. import data
from ..base import Workload


class ResidualBlock(Module):
    """Basic residual block: two 3x3 convolutions with a skip connection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 name: str = "block") -> None:
        super().__init__(name)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, name="conv1")
        self.bn1 = BatchNorm2d(out_channels, name="bn1")
        self.conv2 = Conv2d(out_channels, out_channels, 3, name="conv2")
        self.bn2 = BatchNorm2d(out_channels, name="bn2")
        self.downsample = (Conv2d(in_channels, out_channels, 1, stride=stride, name="downsample")
                           if stride != 1 or in_channels != out_channels else None)

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x) if self.downsample is not None else x
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return F.relu(F.add(out, identity))


class ResNet(Module):
    """A compact ResNet (configurable depth) over NCHW images."""

    def __init__(self, num_classes: int = 1000, width: int = 64,
                 blocks_per_stage: Sequence[int] = (2, 2, 2, 2), name: str = "resnet") -> None:
        super().__init__(name)
        self.stem = Conv2d(3, width, 7, stride=2, name="stem")
        self.stem_bn = BatchNorm2d(width, name="stem_bn")
        self.pool = MaxPool2d(2, name="stem_pool")
        stages: List[Module] = []
        in_channels = width
        for stage_index, num_blocks in enumerate(blocks_per_stage):
            out_channels = width * (2 ** stage_index)
            for block_index in range(num_blocks):
                stride = 2 if block_index == 0 and stage_index > 0 else 1
                stages.append(ResidualBlock(in_channels, out_channels, stride,
                                            name=f"stage{stage_index}_block{block_index}"))
                in_channels = out_channels
        self.stages = ModuleList(stages, name="stages")
        self.head = Linear(in_channels, num_classes, name="fc")

    def forward(self, images: Tensor) -> Tensor:
        x = self.pool(F.relu(self.stem_bn(self.stem(images))))
        for block in self.stages:
            x = block(x)
        pooled = F.avg_pool2d(x, kernel_size=x.shape[-1])
        flat = F.reshape(pooled, (pooled.shape[0], pooled.shape[1]))
        return self.head(flat)


class ResNetWorkload(Workload):
    """ResNet-18-style image classification training."""

    name = "ResNet"
    dataset = "ImageNet"
    training = True

    def __init__(self, batch_size: int = 8, image_size: int = 128,
                 num_classes: int = 1000, **options) -> None:
        super().__init__(**options)
        self.batch_size = batch_size
        self.image_size = image_size
        self.num_classes = num_classes
        self.loss_fn = None

    def build(self, engine: EagerEngine) -> None:
        self.model = ResNet(num_classes=self.num_classes)
        self.loss_fn = CrossEntropyLoss()
        self.optimizer = SGD(self.model.parameters(), lr=0.1)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        images = data.image_batch(self.batch_size, height=self.image_size,
                                  width=self.image_size)
        labels = data.label_batch(self.batch_size)
        return [images, labels]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        images, labels = batch
        logits = self.model(images)
        return self.loss_fn(logits, labels)
