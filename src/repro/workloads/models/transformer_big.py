"""Transformer-Big on WMT-style data (paper workload: Transformer-Big / WMT).

The ``loss_fn`` uses the unfused cross-entropy path by default, which launches
separate softmax / copy / nll_loss kernels per invocation — the small-kernel
pattern the kernel-fusion analysis flags in case study 6.3.  ``fused_loss=True``
applies the suggested optimisation.
"""

from __future__ import annotations

from typing import Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import (
    Adam,
    CrossEntropyLoss,
    Embedding,
    Linear,
    Module,
    ModuleList,
    TransformerBlock,
)
from ...framework.tensor import Tensor
from .. import data
from ..base import Workload


class TransformerBig(Module):
    """Encoder-style transformer with a large output vocabulary."""

    def __init__(self, vocab_size: int = 32000, dim: int = 512, num_heads: int = 8,
                 num_layers: int = 4, name: str = "transformer_big") -> None:
        super().__init__(name)
        self.token_embedding = Embedding(vocab_size, dim, name="token_embedding")
        self.blocks = ModuleList(
            [TransformerBlock(dim, num_heads, name=f"block{i}") for i in range(num_layers)],
            name="blocks")
        self.output_projection = Linear(dim, vocab_size, name="output_projection")

    def forward(self, tokens: Tensor) -> Tensor:
        x = self.token_embedding(tokens)
        for block in self.blocks:
            x = block(x)
        return self.output_projection(x)


class TransformerBigWorkload(Workload):
    """WMT-style machine-translation training."""

    name = "Transformer-Big"
    dataset = "WMT"
    training = True

    def __init__(self, batch_size: int = 16, sequence_length: int = 128,
                 vocab_size: int = 32000, num_layers: int = 4,
                 fused_loss: bool = False, **options) -> None:
        super().__init__(**options)
        self.batch_size = batch_size
        self.sequence_length = sequence_length
        self.vocab_size = vocab_size
        self.num_layers = num_layers
        self.fused_loss = fused_loss
        self.loss_fn = None

    def build(self, engine: EagerEngine) -> None:
        self.model = TransformerBig(vocab_size=self.vocab_size, num_layers=self.num_layers)
        self.loss_fn = CrossEntropyLoss(fused=self.fused_loss)
        self.optimizer = Adam(self.model.parameters(), lr=1e-4)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        tokens, targets = data.text_batch(self.batch_size, self.sequence_length,
                                          self.vocab_size)
        return [tokens, targets]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        tokens, targets = batch
        logits = self.model(tokens)
        flat_logits = F.reshape(logits, (self.batch_size * self.sequence_length,
                                         self.vocab_size))
        flat_targets = F.reshape(targets, (self.batch_size * self.sequence_length,))
        return self.loss_fn(flat_logits, flat_targets)
