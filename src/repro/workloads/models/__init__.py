"""Model definitions for the AlgoPerf-style evaluation workloads."""

from .conformer import Conformer, ConformerWorkload
from .dlrm import DLRM, DLRMWorkload
from .gnn import GNN, GNNWorkload
from .llm import CausalLM, GemmaWorkload, Llama3Workload, NanoGPTWorkload
from .resnet import ResNet, ResNetWorkload
from .transformer_big import TransformerBig, TransformerBigWorkload
from .unet import UNet, UNetWorkload
from .vit import VisionTransformer, ViTWorkload

__all__ = [
    "Conformer",
    "ConformerWorkload",
    "DLRM",
    "DLRMWorkload",
    "GNN",
    "GNNWorkload",
    "CausalLM",
    "Llama3Workload",
    "GemmaWorkload",
    "NanoGPTWorkload",
    "ResNet",
    "ResNetWorkload",
    "TransformerBig",
    "TransformerBigWorkload",
    "UNet",
    "UNetWorkload",
    "VisionTransformer",
    "ViTWorkload",
]
