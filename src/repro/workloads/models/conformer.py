"""Conformer on LibriSpeech-style data (paper workload: Conformer / LibriSpeech)."""

from __future__ import annotations

from typing import Sequence

from ...framework import functional as F
from ...framework.eager import EagerEngine
from ...framework.modules import (
    Adam,
    Conv1d,
    CrossEntropyLoss,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiheadAttention,
)
from ...framework.tensor import Tensor
from .. import data
from ..base import Workload


class ConvolutionModule(Module):
    """The Conformer convolution module (pointwise + depthwise 1D convolutions)."""

    def __init__(self, dim: int, kernel_size: int = 15, name: str = "conv_module") -> None:
        super().__init__(name)
        self.norm = LayerNorm(dim, name="norm")
        self.pointwise1 = Linear(dim, dim * 2, name="pointwise1")
        self.depthwise = Conv1d(dim * 2, dim * 2, kernel_size, name="depthwise")
        self.pointwise2 = Linear(dim * 2, dim, name="pointwise2")

    def forward(self, x: Tensor) -> Tensor:
        batch, time_steps, dim = x.shape
        h = self.pointwise1(self.norm(x))
        h = F.silu(h)
        h = F.transpose(h, 1, 2)
        h = self.depthwise(h)
        h = F.transpose(h, 1, 2)
        h = F.reshape(h, (batch, time_steps, dim * 2))
        return self.pointwise2(h)


class ConformerBlock(Module):
    """FFN half-step, self-attention, convolution module, FFN half-step."""

    def __init__(self, dim: int, num_heads: int = 4, name: str = "conformer_block") -> None:
        super().__init__(name)
        self.ffn1 = FeedForward(dim, dim * 4, activation="silu", name="ffn1")
        self.attention = MultiheadAttention(dim, num_heads, name="attention")
        self.conv_module = ConvolutionModule(dim, name="conv_module")
        self.ffn2 = FeedForward(dim, dim * 4, activation="silu", name="ffn2")
        self.norm = LayerNorm(dim, name="final_norm")

    def forward(self, x: Tensor) -> Tensor:
        x = F.add(x, self.ffn1(x))
        x = F.add(x, self.attention(x))
        x = F.add(x, self.conv_module(x))
        x = F.add(x, self.ffn2(x))
        return self.norm(x)


class Conformer(Module):
    """Convolutional subsampling + Conformer blocks + token classifier."""

    def __init__(self, features: int = 80, dim: int = 256, num_layers: int = 4,
                 vocab_size: int = 1024, name: str = "conformer") -> None:
        super().__init__(name)
        self.input_projection = Linear(features, dim, name="input_projection")
        self.blocks = ModuleList(
            [ConformerBlock(dim, name=f"block{i}") for i in range(num_layers)],
            name="blocks")
        self.head = Linear(dim, vocab_size, name="head")

    def forward(self, audio: Tensor) -> Tensor:
        x = self.input_projection(audio)
        for block in self.blocks:
            x = block(x)
        return self.head(x)


class ConformerWorkload(Workload):
    """Speech-recognition training on synthetic LibriSpeech-like features."""

    name = "Conformer"
    dataset = "LibriSpeech"
    training = True

    def __init__(self, batch_size: int = 8, time_steps: int = 256,
                 num_layers: int = 4, **options) -> None:
        super().__init__(**options)
        self.batch_size = batch_size
        self.time_steps = time_steps
        self.num_layers = num_layers
        self.loss_fn = None

    def build(self, engine: EagerEngine) -> None:
        self.model = Conformer(num_layers=self.num_layers)
        self.loss_fn = CrossEntropyLoss()
        self.optimizer = Adam(self.model.parameters(), lr=1e-3)

    def make_batch(self, engine: EagerEngine, iteration: int = 0) -> Sequence[Tensor]:
        audio, targets = data.speech_batch(self.batch_size, self.time_steps)
        return [audio, targets]

    def forward_loss(self, engine: EagerEngine, batch: Sequence[Tensor]) -> Tensor:
        audio, targets = batch
        logits = self.model(audio)
        pooled = F.mean(logits)
        flat = F.reshape(logits, (self.batch_size * self.time_steps, logits.shape[-1]))
        del pooled
        return self.loss_fn(flat, targets)
