"""Synthetic dataset generators.

The paper's workloads use LibriSpeech, Criteo 1TB, fastMRI, OGBG-MOLPCBA,
ImageNet and WMT; none are available offline, so each workload draws batches
from a synthetic generator with the same tensor shapes, dtypes and — where it
matters for performance behaviour — the same statistical quirks (e.g. heavily
duplicated categorical indices in the Criteo-like stream, which is what makes
the deterministic ``aten::index`` backward so slow in case study 6.1).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..framework.tensor import CHANNELS_FIRST, Tensor, tensor


def image_batch(batch_size: int = 8, channels: int = 3, height: int = 224,
                width: int = 224, memory_format: str = CHANNELS_FIRST,
                dtype: str = "float32") -> Tensor:
    """ImageNet-style image batch (NCHW by default, like PyTorch)."""
    return tensor((batch_size, channels, height, width), dtype=dtype,
                  memory_format=memory_format, name="images")


def label_batch(batch_size: int = 8) -> Tensor:
    return tensor((batch_size,), dtype="int64", name="labels")


def mri_batch(batch_size: int = 4, height: int = 320, width: int = 320,
              memory_format: str = CHANNELS_FIRST) -> Tuple[Tensor, Tensor]:
    """fastMRI-style single-channel slices plus reconstruction targets."""
    images = tensor((batch_size, 1, height, width), memory_format=memory_format, name="kspace")
    targets = tensor((batch_size, 1, height, width), memory_format=memory_format, name="target")
    return images, targets


def speech_batch(batch_size: int = 8, time_steps: int = 512, features: int = 80
                 ) -> Tuple[Tensor, Tensor]:
    """LibriSpeech-style filterbank features and token targets."""
    audio = tensor((batch_size, time_steps, features), name="audio_features")
    targets = tensor((batch_size,), dtype="int64", name="transcript_tokens")
    return audio, targets


def criteo_batch(batch_size: int = 2048, dense_features: int = 13,
                 num_tables: int = 8, duplicate_fraction: float = 0.85
                 ) -> Tuple[Tensor, Sequence[Tensor], Tensor]:
    """Criteo-style batch: dense features, categorical index vectors, labels.

    Click-log categorical features are extremely skewed: most lookups hit a
    handful of popular IDs.  ``duplicate_fraction`` models that skew and drives
    the serialization factor of the deterministic index backward.
    """
    dense = tensor((batch_size, dense_features), name="dense_features")
    indices = [
        tensor((batch_size,), dtype="int64", name=f"cat_{table}",
               duplicate_fraction=duplicate_fraction)
        for table in range(num_tables)
    ]
    labels = tensor((batch_size,), dtype="int64", name="click_labels")
    return dense, indices, labels


def graph_batch(num_nodes: int = 4096, num_edges: int = 16384, feature_dim: int = 128,
                duplicate_fraction: float = 0.6) -> Tuple[Tensor, Tensor, Tensor, Tensor]:
    """OGBG-MOLPCBA-style molecular graph batch."""
    node_ids = tensor((num_nodes,), dtype="int64", name="node_ids",
                      duplicate_fraction=duplicate_fraction)
    node_features = tensor((num_nodes, feature_dim), name="node_features")
    edge_index = tensor((num_edges,), dtype="int64", name="edge_index",
                        duplicate_fraction=duplicate_fraction)
    labels = tensor((num_nodes,), dtype="int64", name="graph_labels")
    return node_ids, node_features, edge_index, labels


def text_batch(batch_size: int = 16, sequence_length: int = 256,
               vocab_size: int = 32000) -> Tuple[Tensor, Tensor]:
    """WMT-style token batch for sequence-to-sequence training."""
    tokens = tensor((batch_size, sequence_length), dtype="int64", name="tokens",
                    duplicate_fraction=0.3)
    targets = tensor((batch_size, sequence_length), dtype="int64", name="targets")
    return tokens, targets


def prompt_batch(batch_size: int = 1, prompt_length: int = 128,
                 dtype: str = "float16") -> Tensor:
    """The Hugging-Face sample prompt used for the LLM inference workloads."""
    return tensor((batch_size, prompt_length), dtype="int64", name="prompt_tokens")
