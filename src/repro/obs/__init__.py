"""Self-telemetry for the profiler's own machinery (see docs/OBSERVABILITY.md).

``TELEMETRY`` is the process-wide registry; instrumented layers import
it directly (``from ..obs import TELEMETRY``) so the repo lint's
span-discipline rule (RL009) can resolve the calls.  This package sits
at the bottom of the dependency graph and imports nothing from the rest
of ``repro``.
"""

from .telemetry import (BUCKET_BASE, BUCKET_COUNT, DEFAULT_SPAN_CAPACITY,
                        SNAPSHOT_VERSION, TELEMETRY, Histogram, Telemetry,
                        bucket_index, bucket_upper_bound, diff_snapshots,
                        iter_span_children)
from .timeseries import DEFAULT_MAX_RECORDS, HealthTimeSeries

__all__ = [
    "BUCKET_BASE",
    "BUCKET_COUNT",
    "DEFAULT_MAX_RECORDS",
    "DEFAULT_SPAN_CAPACITY",
    "SNAPSHOT_VERSION",
    "TELEMETRY",
    "HealthTimeSeries",
    "Histogram",
    "Telemetry",
    "bucket_index",
    "bucket_upper_bound",
    "diff_snapshots",
    "iter_span_children",
]
