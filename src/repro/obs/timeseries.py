"""Crash-safe JSONL health time-series (see docs/OBSERVABILITY.md).

The fleet watcher appends one telemetry snapshot per interval; the dashboard
reads them back as sparkline trends.  The file is plain JSON-lines so it can
be tailed, grepped and diffed without any tooling, and it follows the repo's
durability discipline adapted to an append-only log:

* every record is a single ``json.dumps`` line written with ``flush`` +
  ``os.fsync`` — a crash can tear at most the line being appended;
* readers tolerate a torn tail: an undecodable line is skipped (and counted),
  never raised, so the series stays readable across the crash that produced
  it;
* retention is bounded: once the record count passes ``max_records`` the file
  is rewritten keeping the newest records — staged in a sibling temp file and
  promoted with ``os.replace``, the same atomic-rename discipline every other
  writer in the tree uses.

Like the rest of :mod:`repro.obs` this module imports nothing from the rest
of ``repro`` — it sits at the bottom of the dependency graph so any layer
(the watcher, the experiment runner, tests) can log health records.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

#: Default retention bound: ~4k records keeps a 5s-interval watcher's series
#: under a day of history and the file in the low megabytes.
DEFAULT_MAX_RECORDS = 4096


class HealthTimeSeries:
    """Bounded, crash-safe JSON-lines log of timestamped health records."""

    def __init__(self, path: str, max_records: int = DEFAULT_MAX_RECORDS,
                 fsync: bool = True) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.path = str(path)
        self.max_records = int(max_records)
        self._fsync = fsync
        #: Records appended through this handle plus those found on disk at
        #: the first append (lazily counted); drives retention trims.
        self._count: Optional[int] = None
        #: Undecodable lines skipped by the last :meth:`records` read.
        self.last_read_skipped = 0

    # -- writing --------------------------------------------------------------------

    def append(self, record: Dict, ts: Optional[float] = None) -> Dict:
        """Append one record (stamped with ``ts``, default now) durably.

        Returns the stamped row.  The ``ts`` key leads the row so a raw
        ``tail -f`` of the file reads chronologically at a glance.
        """
        row = {"ts": float(time.time() if ts is None else ts)}
        row.update(record)
        line = json.dumps(row, separators=(",", ":"))
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if self._count is None:
            self._count = self._count_on_disk()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        self._count += 1
        if self._count > self.max_records:
            self._trim()
        return row

    def _count_on_disk(self) -> int:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    def _trim(self) -> None:
        """Rewrite the file keeping only the newest ``max_records`` rows."""
        rows = self.records()
        keep = rows[-self.max_records:]
        temp_path = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                for row in keep:
                    handle.write(json.dumps(row, separators=(",", ":")) + "\n")
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self._count = len(keep)

    # -- reading --------------------------------------------------------------------

    def records(self) -> List[Dict]:
        """Every decodable record, file order (chronological).

        A line that does not parse as a JSON object — the torn tail of a
        crashed append — is skipped and counted in :attr:`last_read_skipped`,
        never raised: the series must stay readable across the crash that
        tore it.
        """
        rows: List[Dict] = []
        skipped = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except ValueError:
                        skipped += 1
                        continue
                    if isinstance(row, dict):
                        rows.append(row)
                    else:
                        skipped += 1
        except OSError:
            pass  # no file yet: an empty series, not an error
        self.last_read_skipped = skipped
        return rows

    def last(self) -> Optional[Dict]:
        rows = self.records()
        return rows[-1] if rows else None

    def __len__(self) -> int:
        return len(self.records())

    def series(self, section: str, name: str) -> List[Tuple[float, float]]:
        """``(ts, value)`` pairs of one metric across the whole series.

        ``section`` is the snapshot bucket (``"counters"`` / ``"gauges"``),
        ``name`` the metric name inside it (names themselves contain dots, so
        the two are separate arguments rather than one dotted path).  Records
        missing the metric are skipped — a gauge that appears mid-series
        simply starts there.
        """
        points: List[Tuple[float, float]] = []
        for row in self.records():
            bucket = row.get(section)
            if isinstance(bucket, dict) and name in bucket:
                try:
                    points.append((float(row.get("ts", 0.0)),
                                   float(bucket[name])))
                except (TypeError, ValueError):
                    continue
        return points
