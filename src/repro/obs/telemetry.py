"""Self-telemetry: counters, gauges, histograms and span tracing.

The profiler grew machinery whose internals are invisible from the
outside — catalog-lock waits, lazy block decodes, CRC verifications,
index demotions, seal/compaction passes.  This module is the substrate
those seams report through: a process-wide :class:`Telemetry` registry of

* **counters** — monotonically increasing floats, exact under threads
  (every bump takes the registry lock);
* **gauges** — last-write-wins floats (``gauge_set``) with an additive
  form (``gauge_add``) for level-style values;
* **histograms** — fixed log2-scale buckets anchored at
  :data:`BUCKET_BASE` seconds plus a Welford ``(count, sum, min, max,
  mean, m2)`` state folded with the exact operation sequence of
  ``repro.core.storage.accumulate_name_state`` (singleton merges), so
  snapshot statistics compose the same way profile metrics do;
* **spans** — ``with telemetry.span("fleet.query.top_kernels", ...)``
  records a ``(name, tid, start, duration, span_id, parent_id, args)``
  tuple into a bounded ring buffer.  Parent/child nesting is tracked per
  thread; the buffer drops the oldest span when full and counts drops.

Disabled (the default) must be near-free: the only cost on an
instrumented path is one attribute check (``telemetry.enabled``) — and
``span()`` returns a shared stateless no-op context manager.  The
enabled cost is gated by ``benchmarks/test_perf_telemetry.py``.

Exports: :meth:`Telemetry.snapshot` (flat JSON metrics),
:meth:`Telemetry.chrome_trace` (Chrome ``trace_event`` JSON — loads in
Perfetto / ``chrome://tracing``), and atomic file writers for both.

This module deliberately imports nothing from the rest of ``repro`` —
every instrumented layer (``repro.core.storage`` downward) imports it,
so it must sit at the bottom of the dependency graph.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

#: Snapshot schema version; bump on any layout change.
SNAPSHOT_VERSION = 1

#: Histogram bucket 0 upper bound, in the unit being observed (seconds
#: for every built-in metric): 1 nanosecond.  Bucket ``i`` covers
#: ``(BUCKET_BASE * 2**(i-1), BUCKET_BASE * 2**i]``.
BUCKET_BASE = 1e-9

#: Number of log2 buckets.  ``BUCKET_BASE * 2**63`` is ~292 years — the
#: top bucket is an unreachable overflow catch-all in practice.
BUCKET_COUNT = 64

#: Default span ring-buffer capacity.
DEFAULT_SPAN_CAPACITY = 65536


def bucket_index(value: float) -> int:
    """Log2 bucket index for ``value`` (values ``<= BUCKET_BASE`` land
    in bucket 0, values beyond the top bucket clamp into it)."""
    if value <= BUCKET_BASE:
        return 0
    # frexp(x) = (m, e) with x = m * 2**e and 0.5 <= m < 1, so e is
    # ceil(log2(x)) for non-powers-of-two and log2(x) + 1 at powers.
    mantissa, exponent = math.frexp(value / BUCKET_BASE)
    if mantissa == 0.5:
        exponent -= 1
    return min(max(exponent, 0), BUCKET_COUNT - 1)


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index``."""
    return BUCKET_BASE * (2.0 ** index)


class Histogram:
    """Log2-bucketed histogram with a Welford summary state.

    ``observe`` folds each value as a singleton ``(1, v, v, v, v, 0.0)``
    state using the same operation sequence as
    ``repro.core.storage.accumulate_name_state`` (implemented inline —
    this module must not import the storage layer it instruments), so
    ``mean``/``m2`` here and profile metric states agree bit for bit
    when fed the same stream.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "mean", "m2",
                 "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0
        self.mean = 0.0
        self.m2 = 0.0
        self.buckets = [0] * BUCKET_COUNT

    def observe(self, value: float) -> None:
        value = float(value)
        self.buckets[bucket_index(value)] += 1
        if self.count == 0:
            self.count = 1
            self.total = 0.0 + value
            self.minimum = value
            self.maximum = value
            self.mean = value
            self.m2 = 0.0
            return
        combined = self.count + 1
        delta = value - self.mean
        self.m2 = self.m2 + 0.0 + delta * delta * self.count * 1 / combined
        self.mean = (self.mean * self.count + value * 1) / combined
        self.total = self.total + value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.count = combined

    def to_dict(self) -> Dict:
        filled = [[index, bucket_upper_bound(index), count]
                  for index, count in enumerate(self.buckets) if count]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "m2": self.m2,
            "buckets": filled,
        }


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: times its ``with`` body and records on exit."""

    __slots__ = ("_telemetry", "name", "args", "span_id", "parent_id",
                 "_start")

    def __init__(self, telemetry: "Telemetry", name: str, args: Dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.args = args
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._span_enter(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._start
        self._telemetry._span_exit(self, duration)
        return False


class Telemetry:
    """Process-wide registry of counters, gauges, histograms and spans.

    Thread-safe; disabled by default.  All mutation is dropped while
    ``enabled`` is False, so instrumentation can call unconditionally —
    though hot paths should guard with ``if telemetry.enabled:`` to keep
    the disabled cost at one attribute check.
    """

    def __init__(self, span_capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        self.enabled = False
        self.span_capacity = int(span_capacity)
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: deque = deque(maxlen=self.span_capacity)
        self._spans_dropped = 0
        self._next_span_id = 1
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- lifecycle ------------------------------------------------------------------

    def enable(self) -> None:
        """Turn recording on (idempotent; does not clear prior data)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; recorded data stays readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded metric and span; restart the trace clock."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._spans_dropped = 0
            self._next_span_id = 1
            self._epoch = time.perf_counter()
        self._local = threading.local()

    # -- scalar metrics -------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a monotonic counter (exact under threaded increments)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge_set(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_add(self, name: str, delta: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def observe(self, name: str, value: float) -> None:
        """Record one value into the named histogram."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- spans ----------------------------------------------------------------------

    def span(self, name: str, **args):
        """Context manager timing its body into the span ring buffer.

        While disabled this returns a shared no-op object — no
        allocation, no clock read.  Keyword arguments become the span's
        ``args`` payload in the Chrome trace and must be
        JSON-serializable.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, args)

    def _thread_stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _span_enter(self, span: _Span) -> None:
        stack = self._thread_stack()
        span.parent_id = stack[-1] if stack else None
        with self._lock:
            span.span_id = self._next_span_id
            self._next_span_id += 1
        stack.append(span.span_id)

    def _span_exit(self, span: _Span, duration: float) -> None:
        stack = self._thread_stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        record = (span.name, threading.get_ident(),
                  (span._start - self._epoch) * 1e6, duration * 1e6,
                  span.span_id, span.parent_id, span.args)
        with self._lock:
            if len(self._spans) == self.span_capacity:
                self._spans_dropped += 1
            self._spans.append(record)

    def spans(self) -> List[Tuple]:
        """The recorded span tuples, oldest first:
        ``(name, tid, start_us, dur_us, span_id, parent_id, args)``."""
        with self._lock:
            return list(self._spans)

    # -- export ---------------------------------------------------------------------

    def snapshot(self) -> Dict:
        """Flat JSON-serializable view of every registered metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {name: histogram.to_dict()
                          for name, histogram in self._histograms.items()}
            recorded = len(self._spans)
            dropped = self._spans_dropped
        return {
            "version": SNAPSHOT_VERSION,
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": {
                "recorded": recorded,
                "dropped": dropped,
                "capacity": self.span_capacity,
            },
        }

    def chrome_trace(self) -> Dict:
        """Chrome ``trace_event`` JSON for the recorded spans.

        One ``"X"`` (complete) event per span with microsecond ``ts`` /
        ``dur`` relative to the trace epoch, the recording thread's id
        as ``tid``, and ``span_id`` / ``parent_id`` threaded through
        ``args`` so the nesting survives tools that re-sort events.  A
        ``"M"`` metadata event names each thread.  The result loads in
        Perfetto and ``chrome://tracing`` as-is.
        """
        spans = self.spans()
        pid = os.getpid()
        events: List[Dict] = []
        tids = sorted({tid for (_n, tid, _ts, _d, _s, _p, _a) in spans})
        for position, tid in enumerate(tids):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": f"thread-{position}"},
            })
        for name, tid, start_us, dur_us, span_id, parent_id, args in spans:
            payload = dict(args)
            payload["span_id"] = span_id
            if parent_id is not None:
                payload["parent_id"] = parent_id
            events.append({
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(dur_us, 3),
                "pid": pid,
                "tid": tid,
                "args": payload,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_snapshot(self, path: str) -> None:
        _atomic_json_dump(self.snapshot(), path)

    def export_trace(self, path: str) -> None:
        _atomic_json_dump(self.chrome_trace(), path)


def _atomic_json_dump(payload: Dict, path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = f"{path}.{os.getpid()}.tmp"
    try:
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def diff_snapshots(baseline: Dict, candidate: Dict) -> Dict:
    """Delta between two metric snapshots (``candidate - baseline``).

    The watcher's health time-series makes snapshot pairs common — "what
    moved between these two ticks?" — and the buckets compose differently:

    * **counters** are monotonic, so they subtract per name; names present
      on one side only diff against zero.  Zero deltas are omitted — the
      diff shows what moved.
    * **gauges** are last-write-wins levels, so the candidate's value wins
      outright; gauges only the baseline knew are listed as vanished.
    * **histograms** diff ``count``/``sum`` and the filled bucket rows
      bucket-by-bucket (``mean``/``min``/``max`` do not subtract — the
      candidate's are reported for context).
    * **spans** diff ``recorded`` and ``dropped``.
    """
    def _bucket_map(histogram: Dict) -> Dict[int, int]:
        return {int(index): int(count)
                for index, _upper, count in histogram.get("buckets", [])}

    base_counters = dict(baseline.get("counters", {}))
    cand_counters = dict(candidate.get("counters", {}))
    counters = {}
    for name in sorted(set(base_counters) | set(cand_counters)):
        delta = cand_counters.get(name, 0.0) - base_counters.get(name, 0.0)
        if delta:
            counters[name] = delta

    base_gauges = dict(baseline.get("gauges", {}))
    cand_gauges = dict(candidate.get("gauges", {}))

    base_histograms = dict(baseline.get("histograms", {}))
    cand_histograms = dict(candidate.get("histograms", {}))
    histograms = {}
    for name in sorted(set(base_histograms) | set(cand_histograms)):
        base = base_histograms.get(name, {})
        cand = cand_histograms.get(name, {})
        base_buckets = _bucket_map(base)
        cand_buckets = _bucket_map(cand)
        bucket_rows = []
        for index in sorted(set(base_buckets) | set(cand_buckets)):
            delta = cand_buckets.get(index, 0) - base_buckets.get(index, 0)
            if delta:
                bucket_rows.append([index, bucket_upper_bound(index), delta])
        delta_count = cand.get("count", 0) - base.get("count", 0)
        delta_sum = cand.get("sum", 0.0) - base.get("sum", 0.0)
        if delta_count or delta_sum or bucket_rows:
            histograms[name] = {
                "count": delta_count,
                "sum": delta_sum,
                "mean": cand.get("mean", 0.0),
                "min": cand.get("min", 0.0),
                "max": cand.get("max", 0.0),
                "buckets": bucket_rows,
            }

    base_spans = dict(baseline.get("spans", {}))
    cand_spans = dict(candidate.get("spans", {}))
    return {
        "version": SNAPSHOT_VERSION,
        "diff": True,
        "counters": counters,
        "gauges": dict(cand_gauges),
        "gauges_vanished": sorted(set(base_gauges) - set(cand_gauges)),
        "histograms": histograms,
        "spans": {
            "recorded": (cand_spans.get("recorded", 0)
                         - base_spans.get("recorded", 0)),
            "dropped": (cand_spans.get("dropped", 0)
                        - base_spans.get("dropped", 0)),
            "capacity": cand_spans.get("capacity", 0),
        },
    }


def iter_span_children(spans: List[Tuple],
                       span_id: Optional[int]) -> Iterator[Tuple]:
    """Yield the spans whose ``parent_id`` is ``span_id`` (None = roots)."""
    for span in spans:
        if span[5] == span_id:
            yield span


#: The process-wide registry every instrumented layer reports through.
TELEMETRY = Telemetry()
