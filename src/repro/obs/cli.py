"""``python -m repro.obs`` — render a metrics snapshot or Chrome trace.

Takes one exported JSON file (from ``Telemetry.export_snapshot`` or
``Telemetry.export_trace``) and prints a human-readable digest: counter
and gauge tables plus histogram summaries for snapshots; per-span-name
aggregate wall time (count / total / mean / max) for traces.  With
``--diff A B`` it renders the delta between two metric snapshots instead
(counters subtracted, gauges last-wins, histogram buckets diffed) — the
watcher's health time-series makes snapshot pairs common.  Exit code 2
on unreadable or unrecognized input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .telemetry import diff_snapshots


def _load(path: str) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"repro.obs: cannot read {path!r}: {error}", file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"repro.obs: {path!r} is not a JSON object", file=sys.stderr)
        return None
    return data


def _warn_dropped(dropped, out) -> None:
    """A saturated span ring must be loud: every span past capacity was
    silently discarded, so any rendered span numbers are partial."""
    if dropped and dropped > 0:
        print(f"\nWARNING: span ring saturated — {int(dropped)} span(s) "
              f"dropped; recorded spans are a partial view (raise "
              f"span_capacity or export more often)", file=out)


def _render_snapshot(data: Dict, top: int, out) -> None:
    counters = dict(data.get("counters", {}))
    gauges = dict(data.get("gauges", {}))
    histograms = dict(data.get("histograms", {}))
    spans = dict(data.get("spans", {}))
    print(f"metrics snapshot (version {data.get('version', '?')})", file=out)
    if counters:
        print(f"\ncounters ({len(counters)}):", file=out)
        for name in sorted(counters):
            print(f"  {name:<40} {counters[name]:>16g}", file=out)
    if gauges:
        print(f"\ngauges ({len(gauges)}):", file=out)
        for name in sorted(gauges):
            print(f"  {name:<40} {gauges[name]:>16g}", file=out)
    if histograms:
        print(f"\nhistograms ({len(histograms)}):", file=out)
        for name in sorted(histograms):
            h = histograms[name]
            print(f"  {name:<40} count={h.get('count', 0)} "
                  f"sum={h.get('sum', 0.0):.6g} mean={h.get('mean', 0.0):.6g} "
                  f"min={h.get('min', 0.0):.6g} max={h.get('max', 0.0):.6g}",
                  file=out)
    if spans:
        print(f"\nspans: recorded={spans.get('recorded', 0)} "
              f"dropped={spans.get('dropped', 0)} "
              f"capacity={spans.get('capacity', 0)}", file=out)
        _warn_dropped(spans.get("dropped", 0), out)


def _render_diff(baseline_path: str, candidate_path: str, data: Dict,
                 out) -> None:
    counters = dict(data.get("counters", {}))
    gauges = dict(data.get("gauges", {}))
    vanished = list(data.get("gauges_vanished", []))
    histograms = dict(data.get("histograms", {}))
    spans = dict(data.get("spans", {}))
    print(f"snapshot diff: {baseline_path} -> {candidate_path}", file=out)
    if counters:
        print(f"\ncounter deltas ({len(counters)}):", file=out)
        for name in sorted(counters):
            print(f"  {name:<40} {counters[name]:>+16g}", file=out)
    else:
        print("\ncounter deltas: none", file=out)
    if gauges or vanished:
        print(f"\ngauges (last-wins, {len(gauges)}):", file=out)
        for name in sorted(gauges):
            print(f"  {name:<40} {gauges[name]:>16g}", file=out)
        for name in vanished:
            print(f"  {name:<40} {'(vanished)':>16}", file=out)
    if histograms:
        print(f"\nhistogram deltas ({len(histograms)}):", file=out)
        for name in sorted(histograms):
            h = histograms[name]
            print(f"  {name:<40} count={h.get('count', 0):+d} "
                  f"sum={h.get('sum', 0.0):+.6g}", file=out)
            for index, upper, delta in h.get("buckets", []):
                print(f"    bucket[{index}] (<= {upper:.3g}) {delta:+d}",
                      file=out)
    if spans:
        print(f"\nspans: recorded={spans.get('recorded', 0):+d} "
              f"dropped={spans.get('dropped', 0):+d}", file=out)
        _warn_dropped(spans.get("dropped", 0), out)


def _render_trace(data: Dict, top: int, out) -> None:
    events = [event for event in data.get("traceEvents", [])
              if isinstance(event, dict) and event.get("ph") == "X"]
    print(f"chrome trace: {len(events)} span(s), "
          f"{len({event.get('tid') for event in events})} thread(s)",
          file=out)
    totals: Dict[str, List[float]] = {}
    for event in events:
        name = str(event.get("name", "?"))
        duration = float(event.get("dur", 0.0))
        row = totals.setdefault(name, [0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += duration
        row[2] = max(row[2], duration)
    ranked = sorted(totals.items(), key=lambda item: -item[1][1])[:top]
    if ranked:
        print(f"\ntop {len(ranked)} span name(s) by total wall time:",
              file=out)
        print(f"  {'name':<40} {'count':>7} {'total_ms':>10} "
              f"{'mean_ms':>10} {'max_ms':>10}", file=out)
        for name, (count, total_us, max_us) in ranked:
            print(f"  {name:<40} {int(count):>7} {total_us / 1e3:>10.3f} "
                  f"{total_us / count / 1e3:>10.3f} {max_us / 1e3:>10.3f}",
                  file=out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a repro telemetry snapshot or Chrome trace.")
    parser.add_argument("paths", nargs="+", metavar="path",
                        help="snapshot or trace JSON file (two snapshots "
                             "with --diff)")
    parser.add_argument("--diff", action="store_true",
                        help="render the delta between two metric snapshots "
                             "(baseline first, candidate second)")
    parser.add_argument("--top", type=int, default=20,
                        help="span names to show for traces (default 20)")
    arguments = parser.parse_args(argv)
    if arguments.diff:
        if len(arguments.paths) != 2:
            print("repro.obs: --diff takes exactly two snapshot files "
                  "(baseline candidate)", file=sys.stderr)
            return 2
        baseline = _load(arguments.paths[0])
        candidate = _load(arguments.paths[1])
        if baseline is None or candidate is None:
            return 2
        for path, data in ((arguments.paths[0], baseline),
                           (arguments.paths[1], candidate)):
            if "counters" not in data:
                print(f"repro.obs: {path!r} is not a metrics snapshot "
                      f"(--diff compares snapshots, not traces)",
                      file=sys.stderr)
                return 2
        _render_diff(arguments.paths[0], arguments.paths[1],
                     diff_snapshots(baseline, candidate), sys.stdout)
        return 0
    if len(arguments.paths) != 1:
        print("repro.obs: exactly one file expected (use --diff to compare "
              "two snapshots)", file=sys.stderr)
        return 2
    data = _load(arguments.paths[0])
    if data is None:
        return 2
    if "traceEvents" in data:
        _render_trace(data, arguments.top, sys.stdout)
        return 0
    if "counters" in data:
        _render_snapshot(data, arguments.top, sys.stdout)
        return 0
    print(f"repro.obs: {arguments.paths[0]!r} is neither a metrics snapshot "
          f"nor a Chrome trace", file=sys.stderr)
    return 2
