"""Baseline: grandfathered findings, each carrying its own justification.

The baseline is a committed JSON file.  Entries match findings on
``(rule, path, symbol, snippet)`` — not on line numbers — so unrelated edits
above a grandfathered line don't invalidate the baseline, while any change
to the offending line itself (or deleting it) surfaces immediately:

* a finding with no matching entry is **new** and fails the run;
* an entry with no matching finding is **stale** and fails the run (delete
  it — the debt was paid);
* an entry with an empty ``justification`` is **invalid** and fails the run
  (``--write-baseline`` intentionally emits empty justifications so that a
  regenerated baseline cannot be committed without a human writing down why
  each entry deserves to live).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Tuple

from .engine import Finding, STATUS_BASELINED

BASELINE_VERSION = 1

_Key = Tuple[str, str, str, str]


def _key_of(rule: str, path: str, symbol: str, snippet: str) -> _Key:
    return (rule, path, symbol, snippet.strip())


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and the reason it is allowed to survive."""

    rule: str
    path: str
    symbol: str
    snippet: str
    justification: str

    @property
    def key(self) -> _Key:
        return _key_of(self.rule, self.path, self.symbol, self.snippet)

    def as_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "snippet": self.snippet,
            "justification": self.justification,
        }


class BaselineError(ValueError):
    """The baseline file is malformed or contains unjustified entries."""


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    def validate(self) -> None:
        seen: Dict[_Key, BaselineEntry] = {}
        for entry in self.entries:
            if not entry.justification.strip():
                raise BaselineError(
                    f"baseline entry for {entry.rule} at {entry.path} "
                    f"({entry.symbol or 'module level'}) has no "
                    f"justification; every grandfathered finding must say "
                    f"why it is allowed to survive")
            if entry.key in seen:
                raise BaselineError(
                    f"duplicate baseline entry for {entry.rule} at "
                    f"{entry.path}: {entry.snippet!r}")
            seen[entry.key] = entry

    def apply(self, findings: Iterable[Finding]
              ) -> Tuple[List[Finding], List[BaselineEntry]]:
        """Mark baselined findings; return (findings, stale entries).

        Every baseline entry must be consumed by at least one finding;
        leftovers are stale and the caller should fail the run.
        """
        by_key = {entry.key: entry for entry in self.entries}
        used: set = set()
        annotated: List[Finding] = []
        for finding in findings:
            key = _key_of(finding.rule, finding.path, finding.symbol,
                          finding.snippet)
            entry = by_key.get(key)
            if entry is not None and finding.status == "new":
                used.add(key)
                finding = replace(finding, status=STATUS_BASELINED,
                                  justification=entry.justification)
            annotated.append(finding)
        stale = [entry for key, entry in sorted(by_key.items())
                 if key not in used]
        return annotated, stale


def load_baseline(path: str) -> Baseline:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"cannot read baseline {path!r}: {error}") from None
    if not isinstance(payload, dict) or "entries" not in payload:
        raise BaselineError(
            f"baseline {path!r} is not a {{'version', 'entries'}} object")
    entries = []
    for index, raw in enumerate(payload["entries"]):
        try:
            entries.append(BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                symbol=str(raw.get("symbol", "")),
                snippet=str(raw["snippet"]),
                justification=str(raw.get("justification", ""))))
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"baseline {path!r} entry #{index} is malformed: "
                f"{error}") from None
    baseline = Baseline(entries=entries)
    baseline.validate()
    return baseline


def write_baseline(path: str, findings: Iterable[Finding]) -> Baseline:
    """Write a baseline skeleton from the given findings.

    Justifications are left empty on purpose: the loader rejects empty
    justifications, so a freshly written baseline cannot pass CI until a
    human fills in why each entry deserves to be grandfathered.
    """
    entries = []
    seen: set = set()
    for finding in findings:
        key = _key_of(finding.rule, finding.path, finding.symbol,
                      finding.snippet)
        if key in seen:
            continue
        seen.add(key)
        entries.append(BaselineEntry(
            rule=finding.rule, path=finding.path, symbol=finding.symbol,
            snippet=finding.snippet.strip(), justification=""))
    entries.sort(key=lambda entry: entry.key)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return Baseline(entries=entries)
