"""The built-in rules: the repository's contracts, stated once, checkable.

Each rule encodes an invariant whose violation was the root cause of a real
bug fixed in a prior PR (the catalog in ``docs/LINT.md`` names them).  Rules
are deliberately repo-specific: they resolve imports and attribute chains
just far enough to recognise *this* codebase's patterns precisely, trading
generality for zero-configuration precision.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import Finding, ModuleInfo, Rule, Severity, register_rule

#: The only modules allowed to assemble or write binary profile blocks.
BLESSED_EMITTER_MODULES = ("repro.core.storage", "repro.core.streaming")

#: Private storage symbols that constitute the block-emission machinery.
PRIVATE_EMITTER_SYMBOLS = ("_encode_frames_block", "_encode_column_block",
                           "_TAIL")

#: The public emitter every descriptor-stamped block flows through.
PUBLIC_EMITTERS = ("pack_block", "_encode_frames_block",
                   "_encode_column_block")

#: Raw exception types that must not cross the storage/fleet API boundary.
RAW_EXCEPTION_NAMES = {"OSError", "IOError", "struct.error",
                       "json.JSONDecodeError"}

#: Exception types that count as "the error was handled/translated".
_JSON_GUARDS = {"ValueError", "json.JSONDecodeError", "Exception",
                "BaseException", "ProfileFormatError",
                "repro.core.storage.ProfileFormatError"}

#: Shard-tree mutators that must never be called on merged-view objects.
TREE_MUTATORS = {"insert", "attribute", "attribute_many",
                 "insert_and_attribute", "merge_from",
                 "install_exclusive_column"}

#: ``MetricSet`` mutators (``node.exclusive.add(...)`` and friends).
METRIC_MUTATORS = {"add", "add_many", "merge", "put", "zero"}

#: Read accessors through which merged-view taint propagates.
_MERGED_READ_ATTRS = {"root", "kernels", "operators", "scopes"}
_MERGED_READ_CALLS = {"find", "all_nodes", "nodes_of_kind", "bfs", "nodes",
                      "leaves"}

_TEMP_MARKERS = ("tmp", "temp", "pending")


def _call_name(module: ModuleInfo, node: ast.Call) -> Optional[str]:
    return module.resolve(node.func)


def _open_mode(node: ast.Call) -> str:
    """The mode string of an ``open()`` call ("r" when defaulted, "" when
    dynamic and therefore unknowable statically)."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return ""


def _is_write_mode(mode: str) -> bool:
    return any(flag in mode for flag in ("w", "a", "x", "+"))


def _function_statements(function: ast.AST) -> Iterator[ast.AST]:
    for statement in ast.walk(function):
        yield statement


def _first_arg(node: ast.Call) -> Optional[ast.AST]:
    return node.args[0] if node.args else None


# ---------------------------------------------------------------------------
# RL001 — descriptor-emission discipline
# ---------------------------------------------------------------------------

@register_rule
class DescriptorEmissionRule(Rule):
    """Block bytes are emitted only by the blessed storage/streaming writers.

    ``pack_block`` stamps every block descriptor with its CRC-32 (PR 6) and
    keeps one-shot saves and streamed checkpoints on a single descriptor
    protocol.  A raw ``struct.pack`` + ``handle.write`` of block bytes
    anywhere else produces unchecksummed blocks the lazy reader cannot
    verify — exactly the silent-rot class PR 6 closed.
    """

    id = "RL001"
    name = "descriptor-emission"
    severity = Severity.ERROR
    contract = ("Binary profile blocks (struct-packed bytes) may only be "
                "assembled and written inside repro.core.storage / "
                "repro.core.streaming, flowing through pack_block so every "
                "descriptor carries its checksum.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return (module.is_production
                and not module.in_packages(*BLESSED_EMITTER_MODULES))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        struct_instances = self._struct_instances(module)
        pack_calls: List[ast.Call] = []
        emitter_calls: List[ast.Call] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)
            if not isinstance(node, ast.Call):
                continue
            if self._is_pack_call(module, node, struct_instances):
                pack_calls.append(node)
            elif self._is_emitter_call(module, node):
                emitter_calls.append(node)

        flagged_inner: Set[int] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "write"):
                continue
            inner = [call for call in pack_calls + emitter_calls
                     if self._contains(node, call)]
            if inner:
                flagged_inner.update(id(call) for call in inner)
                yield self.finding(
                    module, node,
                    "raw write of struct-packed block bytes outside the "
                    "blessed emitters; route block emission through "
                    "repro.core.storage.pack_block (storage/streaming "
                    "writers) so the descriptor carries its checksum")
        for call in pack_calls:
            if id(call) in flagged_inner:
                continue
            yield self.finding(
                module, call,
                f"{module.text_of(call.func)}(...) assembles struct-packed "
                f"bytes outside {', '.join(BLESSED_EMITTER_MODULES)}; block "
                f"encoding belongs behind the blessed emitters")
        for call in emitter_calls:
            if id(call) in flagged_inner:
                continue
            yield self.finding(
                module, call,
                f"call to block emitter {module.text_of(call.func)!r} "
                f"outside the blessed writer modules")

    @staticmethod
    def _struct_instances(module: ModuleInfo) -> Set[str]:
        instances: Set[str] = set()
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                    and module.resolve(node.value.func) == "struct.Struct"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        instances.add(target.id)
        return instances

    def _check_import(self, module: ModuleInfo,
                      node: ast.ImportFrom) -> Iterator[Finding]:
        base = module.module_name.rsplit(".", 1)[0] if node.level else ""
        prefix = ".".join(part for part in (base, node.module or "") if part)
        if not prefix.endswith("storage"):
            return
        for alias in node.names:
            if alias.name in PRIVATE_EMITTER_SYMBOLS:
                yield self.finding(
                    module, node,
                    f"import of private block-emission symbol "
                    f"{alias.name!r} from the storage engine; only the "
                    f"blessed writer modules may touch the raw encoders")

    def _is_pack_call(self, module: ModuleInfo, node: ast.Call,
                      struct_instances: Set[str]) -> bool:
        resolved = _call_name(module, node)
        if resolved in ("struct.pack", "struct.pack_into"):
            return True
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("pack",
                                                             "pack_into"):
            if isinstance(func.value, ast.Name):
                if func.value.id in struct_instances:
                    return True
                origin = module.imports.get(func.value.id, "")
                if origin.endswith("._TAIL"):
                    return True
        return False

    @staticmethod
    def _is_emitter_call(module: ModuleInfo, node: ast.Call) -> bool:
        resolved = _call_name(module, node)
        if resolved is None:
            return False
        tail = resolved.rsplit(".", 1)[-1]
        if tail not in PUBLIC_EMITTERS:
            return False
        # Only flag names that actually originate in the storage engine (or
        # unqualified local spellings of the same names).
        return resolved == tail or "storage" in resolved

    @staticmethod
    def _contains(outer: ast.AST, inner: ast.AST) -> bool:
        return any(child is inner for child in ast.walk(outer))


# ---------------------------------------------------------------------------
# RL002 — durable-write discipline
# ---------------------------------------------------------------------------

@register_rule
class DurableWriteRule(Rule):
    """Durable files are written temp-file-then-``os.replace``, never in place.

    Every catalog/profile writer since PR 4 stages into a sibling temp file
    and promotes it atomically, so a crash or ENOSPC mid-write can never
    truncate the previous good artifact.  An in-place write-mode ``open`` of
    a final path reopens that failure mode.
    """

    id = "RL002"
    name = "durable-write"
    severity = Severity.ERROR
    contract = ("In repro.core/repro.fleet, write-mode open() must target a "
                "staging path (named *tmp*/*temp*/*pending*, or promoted via "
                "os.replace in the same function); final paths are never "
                "written in place.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production and module.in_packages("repro.core",
                                                           "repro.fleet")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and _call_name(module, node) == "open"):
                continue
            mode = _open_mode(node)
            if not mode or not _is_write_mode(mode):
                continue
            target = _first_arg(node)
            if target is None or self._is_staging_path(module, node, target):
                continue
            yield self.finding(
                module, node,
                f"open({module.text_of(target)}, {mode!r}) writes a final "
                f"path in place; durable writes must stage into a sibling "
                f"temp file and promote it with os.replace")

    def _is_staging_path(self, module: ModuleInfo, call: ast.Call,
                         target: ast.AST) -> bool:
        text = module.text_of(target).lower()
        if any(marker in text for marker in _TEMP_MARKERS):
            return True
        function = module.enclosing_function(call)
        if function is None or not isinstance(target, ast.Name):
            return False
        name = target.id
        for statement in _function_statements(function):
            # The variable was assigned a temp-marked expression earlier...
            if isinstance(statement, ast.Assign) and any(
                    isinstance(assigned, ast.Name) and assigned.id == name
                    for assigned in statement.targets):
                if any(marker in module.text_of(statement.value).lower()
                       for marker in _TEMP_MARKERS):
                    return True
            # ...or it is promoted over a final path in this same function.
            if (isinstance(statement, ast.Call)
                    and module.resolve(statement.func) == "os.replace"
                    and statement.args
                    and isinstance(statement.args[0], ast.Name)
                    and statement.args[0].id == name):
                return True
        # Parameters whose very name marks them as staging paths.
        args = getattr(function, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                if arg.arg == name and any(marker in name.lower()
                                           for marker in _TEMP_MARKERS):
                    return True
        return False


# ---------------------------------------------------------------------------
# RL003 — generation-counter discipline
# ---------------------------------------------------------------------------

@register_rule
class GenerationCounterRule(Rule):
    """Mutators of generation-cached state bump the counter they key.

    ``aggregate_by_name``/``total_metric``/``approximate_size_bytes`` (and
    every cache layered above them) validate against ``self._generation``;
    a mutation path that touches exclusive metrics, the dirty set or the
    node registry without bumping serves stale query results silently.
    """

    id = "RL003"
    name = "generation-counter"
    severity = Severity.ERROR
    contract = ("In a class with a generation-stamped cache (any comparison "
                "against self._generation), every method that mutates "
                "exclusive metrics, the dirty set or the node registry must "
                "bump self._generation in the same body or call a sibling "
                "method that does.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._is_generation_cached(node):
                yield from self._check_class(module, node)

    @staticmethod
    def _is_self_generation(node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and node.attr == "_generation"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _is_generation_cached(self, cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(self._is_self_generation(operand)
                       for operand in operands):
                    return True
        return False

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {statement.name: statement for statement in cls.body
                   if isinstance(statement, ast.FunctionDef)}
        bumping: Set[str] = set()
        calls: Dict[str, Set[str]] = {}
        for name, method in methods.items():
            if self._bumps(method):
                bumping.add(name)
            calls[name] = {
                node.func.attr for node in ast.walk(method)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"}
        changed = True
        while changed:  # transitive: calling a bumping sibling counts
            changed = False
            for name, callees in calls.items():
                if name not in bumping and callees & bumping:
                    bumping.add(name)
                    changed = True
        for name, method in methods.items():
            if name == "__init__" or name in bumping:
                continue
            evidence = self._mutation_evidence(module, method)
            if evidence is not None:
                node, description = evidence
                yield self.finding(
                    module, node,
                    f"method {cls.name}.{name} mutates generation-cached "
                    f"state ({description}) without bumping "
                    f"self._generation; generation-keyed caches will serve "
                    f"stale results")

    def _bumps(self, method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if (isinstance(node, (ast.AugAssign, ast.Assign))
                    and self._is_self_generation(
                        node.target if isinstance(node, ast.AugAssign)
                        else (node.targets[0] if node.targets else node))):
                return True
        return False

    def _mutation_evidence(
            self, module: ModuleInfo,
            method: ast.FunctionDef) -> Optional[Tuple[ast.AST, str]]:
        aliases = {"_dirty": set(), "_registry": set()}
        for node in ast.walk(method):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr in aliases
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[node.value.attr].add(target.id)

        def refers_to(node: ast.AST, attr: str) -> bool:
            if (isinstance(node, ast.Attribute) and node.attr == attr
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return True
            return isinstance(node, ast.Name) and node.id in aliases[attr]

        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and refers_to(target.value, "_dirty")):
                        return node, "writes the dirty set"
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                func = node.func
                if (func.attr == "append"
                        and refers_to(func.value, "_registry")):
                    return node, "appends to the node registry"
                if (func.attr in METRIC_MUTATORS
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "exclusive"):
                    return node, (f"mutates exclusive metrics via "
                                  f".exclusive.{func.attr}()")
        return None


# ---------------------------------------------------------------------------
# RL004 — exception contract
# ---------------------------------------------------------------------------

@register_rule
class ExceptionContractRule(Rule):
    """Raw storage errors never cross the core/fleet API boundary unwrapped.

    Since PR 4 every corrupt/truncated/vanished-file condition surfaces as a
    :class:`ProfileFormatError` naming the path and the condition.  An
    ``except OSError: ... raise`` (or an unguarded ``json.load``) hands the
    caller a raw error with no idea which profile, block or catalog file
    went bad.
    """

    id = "RL004"
    name = "exception-contract"
    severity = Severity.ERROR
    contract = ("In repro.core/repro.fleet, handlers that catch raw "
                "OSError/struct.error/json.JSONDecodeError must not "
                "re-raise them unwrapped (wrap in ProfileFormatError naming "
                "path + condition), and json.load/loads calls must sit in a "
                "try block that translates decode failures.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production and module.in_packages("repro.core",
                                                           "repro.fleet")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif (isinstance(node, ast.Call)
                  and _call_name(module, node) in ("json.load", "json.loads")
                  and not self._json_guarded(module, node)):
                yield self.finding(
                    module, node,
                    f"{_call_name(module, node)}(...) is not guarded by a "
                    f"try block translating decode errors; a corrupt file "
                    f"leaks a raw json.JSONDecodeError across the API "
                    f"boundary instead of a ProfileFormatError/ValueError "
                    f"naming the path")

    def _caught_raw(self, module: ModuleInfo,
                    handler: ast.ExceptHandler) -> List[str]:
        types: List[ast.AST] = []
        if handler.type is None:
            return []
        if isinstance(handler.type, ast.Tuple):
            types = list(handler.type.elts)
        else:
            types = [handler.type]
        caught = []
        for type_node in types:
            resolved = module.resolve(type_node)
            if resolved in RAW_EXCEPTION_NAMES:
                caught.append(resolved)
        return caught

    def _check_handler(self, module: ModuleInfo,
                       handler: ast.ExceptHandler) -> Iterator[Finding]:
        raw = self._caught_raw(module, handler)
        if not raw:
            return
        for node in ast.walk(handler):
            if not isinstance(node, ast.Raise):
                continue
            re_raises = node.exc is None or (
                handler.name is not None
                and isinstance(node.exc, ast.Name)
                and node.exc.id == handler.name)
            if re_raises:
                yield self.finding(
                    module, node,
                    f"handler catches raw {', '.join(raw)} and re-raises it "
                    f"unwrapped across the core/fleet API boundary; wrap in "
                    f"ProfileFormatError naming the path and condition")

    def _json_guarded(self, module: ModuleInfo, call: ast.Call) -> bool:
        child: ast.AST = call
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.Try):
                in_body = any(self._holds(statement, child)
                              for statement in ancestor.body)
                if in_body and any(
                        self._handler_translates(module, handler)
                        for handler in ancestor.handlers):
                    return True
            child = ancestor
        return False

    @staticmethod
    def _holds(statement: ast.AST, node: ast.AST) -> bool:
        return any(descendant is node for descendant in ast.walk(statement))

    def _handler_translates(self, module: ModuleInfo,
                            handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (list(handler.type.elts)
                 if isinstance(handler.type, ast.Tuple) else [handler.type])
        for type_node in types:
            resolved = module.resolve(type_node) or ""
            if resolved in _JSON_GUARDS or resolved.endswith("Error"):
                return True
        return False


# ---------------------------------------------------------------------------
# RL005 — catalog lock discipline
# ---------------------------------------------------------------------------

@register_rule
class CatalogLockRule(Rule):
    """Catalog writes happen only under the advisory catalog lock.

    The catalog's read-merge-write cycle is what lets two processes ingest
    into one store without losing each other's rows (PR 6); a catalog write
    outside ``with _CatalogLock(...)`` reopens the lost-update race.
    """

    id = "RL005"
    name = "catalog-lock"
    severity = Severity.ERROR
    contract = ("Any write-mode open() or os.replace() whose target derives "
                "from the catalog path must be lexically inside a `with "
                "_CatalogLock(...)` block.")

    #: The noun that marks a write target as belonging to this rule's
    #: protected structure; subclasses (RL008) retarget the same machinery.
    target_noun = "catalog"

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            description = self._catalog_write(module, node)
            if description is None:
                continue
            if not self._under_lock(module, node):
                yield self.finding(
                    module, node,
                    f"{description} outside the catalog lock; "
                    f"{self.target_noun} mutations must run inside `with "
                    f"_CatalogLock(...)` so concurrent writers serialize "
                    f"their read-merge-write cycles")

    def _catalog_write(self, module: ModuleInfo,
                       node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        resolved = _call_name(module, node)
        if resolved == "open":
            mode = _open_mode(node)
            target = _first_arg(node)
            if (mode and _is_write_mode(mode) and target is not None
                    and self._is_catalogish(module, node, target)):
                return (f"write-mode open of {self.target_noun} path "
                        f"{module.text_of(target)}")
        elif resolved == "os.replace" and len(node.args) >= 2:
            destination = node.args[1]
            if self._is_catalogish(module, node, destination):
                return (f"os.replace onto {self.target_noun} path "
                        f"{module.text_of(destination)}")
        return None

    def _is_catalogish(self, module: ModuleInfo, call: ast.Call,
                       target: ast.AST) -> bool:
        if self._text_is_catalogish(module.text_of(target)):
            return True
        function = module.enclosing_function(call)
        if function is None or not isinstance(target, ast.Name):
            return False
        # One level of local dataflow: a variable assigned from a
        # catalog-flavoured expression carries the taint.
        for statement in _function_statements(function):
            if isinstance(statement, ast.Assign) and any(
                    isinstance(assigned, ast.Name)
                    and assigned.id == target.id
                    for assigned in statement.targets):
                if self._text_is_catalogish(module.text_of(statement.value)):
                    return True
        return False

    @classmethod
    def _text_is_catalogish(cls, text: str) -> bool:
        lowered = text.lower()
        return (cls.target_noun in lowered
                and "cataloglock" not in lowered.replace("_", ""))

    @staticmethod
    def _under_lock(module: ModuleInfo, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    text = module.text_of(item.context_expr).lower()
                    if ("cataloglock" in text.replace("_", "")
                            or "catalog_lock" in text):
                        return True
        return False


# ---------------------------------------------------------------------------
# RL006 — merged-view mutation guard
# ---------------------------------------------------------------------------

@register_rule
class MergedViewMutationRule(Rule):
    """Objects obtained from ``merged()`` views are read-only caches.

    The merged tree is rebuilt (and discarded) when any shard changes
    (PR 2): attributing into it — or into nodes fetched from it — silently
    loses the observation on the next rebuild.  The runtime guard catches
    this at attribution time; this rule catches it in review.
    """

    id = "RL006"
    name = "merged-view-mutation"
    severity = Severity.ERROR
    contract = ("No shard mutator (insert/attribute/attribute_many/"
                "merge_from/install_exclusive_column, or "
                ".exclusive.<mutator>) may be called on an object obtained "
                "from a .merged() accessor, nor may such an object be "
                "passed as the node of attribute/attribute_many.")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(node for node in ast.walk(module.tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(self, module: ModuleInfo,
                     scope: ast.AST) -> Iterator[Finding]:
        own_nodes = self._own_nodes(scope)
        tainted = self._tainted_names(own_nodes)

        def is_tainted(expr: ast.AST) -> bool:
            return self._expr_tainted(expr, tainted)

        seen: Set[int] = set()
        for node in own_nodes:
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if id(node) in seen:
                continue
            attr = node.func.attr
            if attr in TREE_MUTATORS and is_tainted(node.func.value):
                seen.add(id(node))
                yield self.finding(
                    module, node,
                    f".{attr}(...) called on an object obtained from a "
                    f"merged() view; merged views are discardable query "
                    f"caches — mutate through the owning shard instead")
            elif (attr in ("attribute", "attribute_many") and node.args
                  and is_tainted(node.args[0])):
                seen.add(id(node))
                yield self.finding(
                    module, node,
                    f"node passed to .{attr}(...) was obtained from a "
                    f"merged() view; attributing into merged-view nodes "
                    f"silently loses the observation on the next rebuild")
            elif (attr in METRIC_MUTATORS
                  and isinstance(node.func.value, ast.Attribute)
                  and node.func.value.attr in ("exclusive", "inclusive")
                  and is_tainted(node.func.value.value)):
                seen.add(id(node))
                yield self.finding(
                    module, node,
                    f"direct metric mutation "
                    f".{node.func.value.attr}.{attr}(...) on an object "
                    f"obtained from a merged() view")

    @staticmethod
    def _own_nodes(scope: ast.AST) -> List[ast.AST]:
        """Nodes belonging to this scope, not to nested function scopes."""
        nodes: List[ast.AST] = []
        stack: List[ast.AST] = [scope]
        while stack:
            current = stack.pop()
            nodes.append(current)
            for child in ast.iter_child_nodes(current):
                if (current is not scope
                        and isinstance(child, (ast.FunctionDef,
                                               ast.AsyncFunctionDef))):
                    continue
                if (current is scope and scope is not child
                        and isinstance(child, (ast.FunctionDef,
                                               ast.AsyncFunctionDef))
                        and not isinstance(scope, (ast.FunctionDef,
                                                   ast.AsyncFunctionDef))):
                    # Module scope: functions are their own scopes.
                    continue
                stack.append(child)
        return nodes

    def _tainted_names(self, nodes: Sequence[ast.AST]) -> Set[str]:
        tainted: Set[str] = set()
        for _ in range(4):  # tiny fixpoint: taint flows through assignments
            before = len(tainted)
            for node in nodes:
                if isinstance(node, ast.Assign):
                    if self._expr_tainted(node.value, tainted):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                tainted.add(target.id)
                            elif isinstance(target, (ast.Tuple, ast.List)):
                                for element in target.elts:
                                    if isinstance(element, ast.Name):
                                        tainted.add(element.id)
                elif isinstance(node, ast.For):
                    if (self._expr_tainted(node.iter, tainted)
                            and isinstance(node.target, ast.Name)):
                        tainted.add(node.target.id)
            if len(tainted) == before:
                break
        return tainted

    def _expr_tainted(self, expr: ast.AST, tainted: Set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Call):
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "merged"):
                return True
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _MERGED_READ_CALLS):
                return self._expr_tainted(expr.func.value, tainted)
            return False
        if isinstance(expr, ast.Attribute):
            if expr.attr in _MERGED_READ_ATTRS or expr.attr in ("exclusive",
                                                                "inclusive"):
                return self._expr_tainted(expr.value, tainted)
            return False
        if isinstance(expr, ast.Subscript):
            return self._expr_tainted(expr.value, tainted)
        return False


# ---------------------------------------------------------------------------
# RL007 — no global monkeypatching in production code
# ---------------------------------------------------------------------------

@register_rule
class MonkeypatchRule(Rule):
    """Production code does not rebind attributes of imported modules.

    Patching a module attribute (``builtins.open = ...``) changes behaviour
    process-wide for every caller, concurrent thread and library; the only
    sanctioned instance is the fault-injection harness, which is scoped,
    re-entrancy-guarded — and carries the suppression that documents it.
    """

    id = "RL007"
    name = "no-monkeypatch"
    severity = Severity.WARNING
    contract = ("Assignments to attributes of imported modules (and "
                "setattr on a module object) are forbidden in production "
                "code; test fixtures and the faultfs harness opt out "
                "explicitly with a justified suppression.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imported_modules = {
            alias.asname or alias.name.split(".")[0]
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Import)
            for alias in node.names}
        for node in ast.walk(module.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in imported_modules):
                    yield self.finding(
                        module, node,
                        f"monkeypatches {target.value.id}.{target.attr}: "
                        f"rebinding an imported module's attribute changes "
                        f"process-wide behaviour for every caller")
            if (isinstance(node, ast.Call)
                    and _call_name(module, node) == "setattr"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in imported_modules):
                yield self.finding(
                    module, node,
                    f"setattr on imported module "
                    f"{node.args[0].id!r}: monkeypatching is forbidden in "
                    f"production code")


# ---------------------------------------------------------------------------
# RL008 — fleet-index lock discipline
# ---------------------------------------------------------------------------

@register_rule
class IndexLockRule(CatalogLockRule):
    """Fleet-index writes happen only under the advisory catalog lock.

    The index's name dictionary is a read-intern-append cycle shared by
    every ingesting process (PR 8): a dictionary or summary write outside
    ``with _CatalogLock(...)`` can drop another writer's interned names,
    leaving summaries whose ids resolve to the wrong strings.  Same taint
    machinery as RL005, retargeted at index-flavoured paths.
    """

    id = "RL008"
    name = "index-lock"
    severity = Severity.ERROR
    contract = ("Any write-mode open() or os.replace() whose target derives "
                "from the fleet-index path must be lexically inside a `with "
                "_CatalogLock(...)` block.")

    target_noun = "index"


# ---------------------------------------------------------------------------
# RL009 — span discipline
# ---------------------------------------------------------------------------

#: Wall-clock sources whose subtraction means "a duration was measured".
CLOCK_CALLS = ("time.monotonic", "time.time", "time.perf_counter")


@register_rule
class SpanDisciplineRule(Rule):
    """Measured durations flow through the telemetry layer, not ad hoc.

    PR 9 gave the repo one self-observation spine (:mod:`repro.obs`):
    counters, histograms and spans under a single naming scheme, one
    exporter, near-zero disabled cost.  A wall-clock delta computed in the
    instrumented packages without touching that spine is a measurement no
    trace or snapshot will ever show — the exact blind spot the telemetry
    layer closed.  Deadline *comparisons* (``time.monotonic() >= deadline``)
    are not deltas and pass untouched.
    """

    id = "RL009"
    name = "span-discipline"
    severity = Severity.WARNING
    contract = ("In repro.core/repro.fleet/repro.experiments, a function "
                "that computes a wall-clock delta (subtracting "
                "time.monotonic()/time.time()/time.perf_counter() readings) "
                "must report through repro.obs in the same function — a "
                "TELEMETRY span, counter or histogram observation.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production and module.in_packages(
            "repro.core", "repro.fleet", "repro.experiments")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Sub)):
                continue
            function = module.enclosing_function(node)
            clock_names = (self._clock_names(module, function)
                           if function is not None else set())
            if not (self._is_clock_reading(module, node.left, clock_names)
                    or self._is_clock_reading(module, node.right,
                                              clock_names)):
                continue
            if function is not None and self._reports_through_obs(module,
                                                                  function):
                continue
            yield self.finding(
                module, node,
                "wall-clock delta computed outside the telemetry layer; "
                "report measured durations through repro.obs (a TELEMETRY "
                "span or histogram observation) so they show up in traces "
                "and snapshots")

    @staticmethod
    def _is_clock_reading(module: ModuleInfo, node: ast.AST,
                          clock_names: Set[str]) -> bool:
        if isinstance(node, ast.Call):
            return _call_name(module, node) in CLOCK_CALLS
        if isinstance(node, ast.Name):
            return node.id in clock_names
        return False

    @staticmethod
    def _clock_names(module: ModuleInfo, function: ast.AST) -> Set[str]:
        """Local names assigned from a clock call in this function."""
        names: Set[str] = set()
        for statement in ast.walk(function):
            if (isinstance(statement, ast.Assign)
                    and isinstance(statement.value, ast.Call)
                    and _call_name(module, statement.value) in CLOCK_CALLS):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _reports_through_obs(module: ModuleInfo, function: ast.AST) -> bool:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            resolved = _call_name(module, node)
            if resolved is not None and (
                    resolved == "repro.obs"
                    or resolved.startswith("repro.obs.")):
                return True
        return False


# ---------------------------------------------------------------------------
# RL010 — bounded poll
# ---------------------------------------------------------------------------

#: Blocking-sleep calls that turn a loop into a polling/retry loop.
SLEEP_CALLS = ("time.sleep",)
#: Attribute spellings of event/condition waits (``stop.wait(...)``,
#: ``condition.wait(...)``) — matched by attribute name since the receiver
#: is an arbitrary local.
WAIT_ATTRIBUTES = ("wait",)


@register_rule
class BoundedPollRule(Rule):
    """Polling and retry loops carry a deadline or an iteration bound.

    The fleet watcher (PR 10) made standing poll loops a first-class
    pattern: a daemon that sleeps and retries forever is one vanished file
    or wedged lock away from a silent hang that no timeout will ever
    surface.  Every loop in the instrumented packages that blocks each
    iteration — ``time.sleep(...)`` or an event/condition ``.wait(...)`` —
    must therefore be *visibly* bounded inside the loop: a comparison
    against a wall-clock deadline (``time.monotonic() >= deadline``, the
    catalog lock's shape), a comparison against a counter the loop body
    advances (``ticks >= max_ticks``, the watcher's shape), or iteration
    over a finite ``range``/collection.  An unconditionally infinite
    generator (``itertools.count``) bounds nothing.
    """

    id = "RL010"
    name = "bounded-poll"
    severity = Severity.ERROR
    contract = ("In repro.core/repro.fleet/repro.obs, a loop that blocks "
                "each iteration via time.sleep(...) or .wait(...) must "
                "contain a deadline comparison against a wall clock or a "
                "comparison against a counter advanced in the loop body "
                "(for-loops over anything but itertools.count are bounded "
                "by their iterable).")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_production and module.in_packages(
            "repro.core", "repro.fleet", "repro.obs")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.While):
                if self._polls(module, node) and \
                        not self._while_is_bounded(module, node):
                    yield self._poll_finding(module, node)
            elif isinstance(node, ast.For):
                if self._polls(module, node) and \
                        _call_name_of(module, node.iter) == "itertools.count":
                    yield self._poll_finding(module, node)

    def _poll_finding(self, module: ModuleInfo, node: ast.AST) -> Finding:
        return self.finding(
            module, node,
            "unbounded polling loop: the loop sleeps/waits every iteration "
            "but carries no deadline comparison against a wall clock and no "
            "counter bound advanced in its body; a wedged dependency turns "
            "this into a silent hang — compare time.monotonic() against a "
            "deadline, or count iterations against a cap, inside the loop")

    # -- does the loop block each iteration? -------------------------------------------

    @classmethod
    def _polls(cls, module: ModuleInfo, loop: ast.AST) -> bool:
        for node in cls._walk_loop(loop):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(module, node) in SLEEP_CALLS:
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in WAIT_ATTRIBUTES):
                return True
        return False

    # -- is the loop bounded? ----------------------------------------------------------

    @classmethod
    def _while_is_bounded(cls, module: ModuleInfo, loop: ast.While) -> bool:
        clock_names = cls._clock_derived_names(module, loop)
        counters = cls._advanced_counters(loop)
        for node in cls._walk_loop(loop):
            if not isinstance(node, ast.Compare):
                continue
            for operand in [node.left, *node.comparators]:
                if isinstance(operand, ast.Call) and \
                        _call_name(module, operand) in CLOCK_CALLS:
                    return True
                if isinstance(operand, ast.Name) and \
                        operand.id in clock_names | counters:
                    return True
        return False

    @staticmethod
    def _walk_loop(loop: ast.AST) -> Iterator[ast.AST]:
        """The loop's test and body, excluding nested function bodies (a
        callback defined inside the loop is not part of its control flow)."""
        stack = ([loop.test, *loop.body] if isinstance(loop, ast.While)
                 else list(loop.body))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _clock_derived_names(module: ModuleInfo, loop: ast.AST) -> Set[str]:
        """Names the *enclosing function* assigns from a wall-clock reading —
        directly or via arithmetic on one (``deadline = started + 10``
        counts when ``started`` came from a clock)."""
        function = module.enclosing_function(loop)
        scope = function if function is not None else module.tree
        names: Set[str] = set()
        grew = True
        while grew:
            grew = False
            for statement in ast.walk(scope):
                if not (isinstance(statement, ast.Assign)
                        and isinstance(statement.targets[0], ast.Name)):
                    continue
                target = statement.targets[0].id
                if target in names:
                    continue
                for node in ast.walk(statement.value):
                    if (isinstance(node, ast.Call)
                            and _call_name(module, node) in CLOCK_CALLS) \
                            or (isinstance(node, ast.Name)
                                and node.id in names):
                        names.add(target)
                        grew = True
                        break
        return names

    @classmethod
    def _advanced_counters(cls, loop: ast.AST) -> Set[str]:
        """Names the loop body advances (``n += 1`` / ``n = n + ...``)."""
        names: Set[str] = set()
        for node in cls._walk_loop(loop):
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif (isinstance(node, ast.Assign)
                  and len(node.targets) == 1
                  and isinstance(node.targets[0], ast.Name)
                  and isinstance(node.value, ast.BinOp)
                  and any(isinstance(child, ast.Name)
                          and child.id == node.targets[0].id
                          for child in ast.walk(node.value))):
                names.add(node.targets[0].id)
        return names


def _call_name_of(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    """``_call_name`` for nodes that may not be calls at all."""
    if isinstance(node, ast.Call):
        return _call_name(module, node)
    return None
