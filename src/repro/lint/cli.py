"""Command line front end: ``python -m repro.lint [paths...]``.

Exit status is 0 only when every finding is suppressed or baselined and no
baseline entry went stale; anything else — a new finding, a stale entry, a
reason-less suppression, an unjustified baseline — exits 1.  ``--format
json`` emits a machine-readable report (CI uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import Baseline, BaselineError, load_baseline, write_baseline
from .engine import (Finding, LintEngine, STATUS_NEW, all_rules, rule_by_id)

DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_PATHS = ("src", "tests")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("AST-based invariant checker for this repository's "
                     "durability, caching and concurrency contracts."))
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--rule", action="append", metavar="ID", default=None,
        help="run only this rule id (repeatable, e.g. --rule RL002)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(f"baseline file of grandfathered findings (default: "
              f"{DEFAULT_BASELINE} when it exists)"))
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as new")
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help=("write current findings to FILE as a baseline skeleton "
              "(justifications left empty — fill them in before committing)"))
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def _select_rules(rule_ids: Optional[Sequence[str]]):
    if not rule_ids:
        return all_rules()
    return [rule_by_id(rule_id) for rule_id in rule_ids]


def _print_rules(stream) -> None:
    for rule in all_rules():
        print(f"{rule.id}  {rule.name}  [{rule.severity}]", file=stream)
        print(f"    {rule.contract}", file=stream)


def _render_text(findings: List[Finding], stale, stream) -> None:
    visible = [finding for finding in findings
               if finding.status == STATUS_NEW]
    for finding in visible:
        symbol = f" in {finding.symbol}" if finding.symbol else ""
        print(f"{finding.location}: {finding.rule} [{finding.severity}]"
              f"{symbol}: {finding.message}", file=stream)
        if finding.snippet:
            print(f"    {finding.snippet}", file=stream)
    for entry in stale:
        print(f"{entry.path}: stale baseline entry for {entry.rule} "
              f"({entry.symbol or 'module level'}): {entry.snippet!r} — the "
              f"finding no longer exists; delete the entry", file=stream)
    suppressed = sum(1 for f in findings if f.status == "suppressed")
    baselined = sum(1 for f in findings if f.status == "baselined")
    print(f"{len(visible)} new finding(s), {baselined} baselined, "
          f"{suppressed} suppressed, {len(stale)} stale baseline entr(ies)",
          file=stream)


def _render_json(findings: List[Finding], stale, stream) -> None:
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "stale_baseline_entries": [entry.as_dict() for entry in stale],
        "summary": {
            "new": sum(1 for f in findings if f.status == STATUS_NEW),
            "baselined": sum(1 for f in findings
                             if f.status == "baselined"),
            "suppressed": sum(1 for f in findings
                              if f.status == "suppressed"),
            "stale": len(stale),
        },
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def main(argv: Optional[Sequence[str]] = None,
         stdout=None, stderr=None) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        _print_rules(stdout)
        return 0

    try:
        rules = _select_rules(args.rule)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=stderr)
        return 2

    engine = LintEngine(rules=rules)
    findings = engine.lint_paths(args.paths)

    if args.write_baseline:
        write_baseline(args.write_baseline,
                       [f for f in findings if f.status == STATUS_NEW])
        print(f"wrote baseline skeleton to {args.write_baseline}; fill in "
              f"the empty justifications before committing it",
              file=stderr)
        return 0

    baseline = Baseline()
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
            baseline_path = DEFAULT_BASELINE
        if baseline_path is not None:
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as error:
                print(f"error: {error}", file=stderr)
                return 2

    findings, stale = baseline.apply(findings)

    if args.format == "json":
        _render_json(findings, stale, stdout)
    else:
        _render_text(findings, stale, stdout)

    has_new = any(finding.status == STATUS_NEW for finding in findings)
    return 1 if (has_new or stale) else 0
