"""repro.lint — an AST-based invariant checker for this repository.

The durability, caching and concurrency contracts the profiler's correctness
rests on — blessed block emitters, temp-file-then-``os.replace`` durable
writes, generation-counter cache invalidation, wrapped storage exceptions,
catalog-lock discipline, merged-view immutability — are stated once here as
checkable rules instead of being re-litigated in every review.  Each rule
has a stable id (``RL001``…), a severity, documentation (``docs/LINT.md``)
and precise ``file:line`` findings.

Run it as a CLI::

    python -m repro.lint [paths...] [--rule ID] [--format json|text]
                         [--baseline FILE]

Findings in existing code are either fixed or grandfathered into the
committed baseline (``lint-baseline.json``) with a per-entry justification;
new findings always fail.  Individual lines opt out with an inline
``# repro-lint: disable=RLxxx <reason>`` comment — the reason is mandatory.
"""

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .engine import (Finding, LintEngine, ModuleInfo, Rule, Severity,
                     all_rules, lint_paths, lint_source, rule_by_id)
from . import rules as _rules  # noqa: F401  (registers the built-in rules)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintEngine",
    "ModuleInfo",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_by_id",
    "write_baseline",
]
