"""The rule engine: parsed modules, import/attribute resolution, findings.

The engine parses each file once with :mod:`ast`, wraps it in a
:class:`ModuleInfo` (source lines, parent links, an import map that resolves
local names to dotted targets, enclosing-symbol lookup, inline-suppression
table) and hands it to every registered :class:`Rule`.  Rules are pure
functions of a module: they yield :class:`Finding`\\ s and never mutate.

Suppressions are inline comments::

    builtins.open = faulted_open  # repro-lint: disable=RL007 scoped harness

The reason text after the rule ids is mandatory: a bare ``disable`` does not
suppress and instead surfaces as an ``RL000`` finding, so every opt-out in
the tree carries its own justification.  A suppression comment on a line of
its own applies to the next code line.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Severity levels findings carry (both fail the gate; severity is for
#: readers prioritising a burn-down, not for the exit code).
class Severity:
    ERROR = "error"
    WARNING = "warning"


#: Finding lifecycle states.
STATUS_NEW = "new"
STATUS_SUPPRESSED = "suppressed"
STATUS_BASELINED = "baselined"

#: The meta-rule id for malformed suppressions (always active).
META_RULE_ID = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s+(\S.*))?$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: Dotted enclosing symbol (``Class.method``), "" at module level.
    symbol: str = ""
    #: The stripped source line — what baseline entries match on, so
    #: findings survive unrelated line-number churn.
    snippet: str = ""
    status: str = STATUS_NEW
    #: Reason attached to the suppression/baseline entry covering this
    #: finding ("" for new findings).
    justification: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "snippet": self.snippet,
            "status": self.status,
            "justification": self.justification,
        }


@dataclass
class _Suppression:
    ids: Tuple[str, ...]
    reason: str
    comment_line: int


class ModuleInfo:
    """One parsed module plus everything rules commonly need from it."""

    def __init__(self, source: str, path: str) -> None:
        self.source = source
        self.path = _normalize(path)
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.imports = self._import_map()
        #: line -> suppression covering that line.
        self.suppressions: Dict[int, _Suppression] = {}
        #: Suppression comments missing their mandatory reason.
        self.bad_suppressions: List[_Suppression] = []
        self._scan_suppressions()

    # -- identity -----------------------------------------------------------------

    @property
    def module_name(self) -> str:
        """Dotted module path anchored at the ``repro`` package ("" when the
        file lives outside it — tests, scripts)."""
        parts = self.path.split("/")
        stem = list(parts)
        if stem and stem[-1].endswith(".py"):
            stem[-1] = stem[-1][:-3]
        if "repro" in stem:
            anchored = stem[stem.index("repro"):]
            if anchored[-1] == "__init__":
                anchored = anchored[:-1]
            return ".".join(anchored)
        return ""

    @property
    def is_test(self) -> bool:
        name = os.path.basename(self.path)
        return ("/tests/" in f"/{self.path}" or name.startswith("test_")
                or name == "conftest.py")

    @property
    def is_production(self) -> bool:
        return bool(self.module_name) and not self.is_test

    def in_packages(self, *prefixes: str) -> bool:
        name = self.module_name
        return any(name == prefix or name.startswith(prefix + ".")
                   for prefix in prefixes)

    # -- structure ----------------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_symbol(self, node: ast.AST) -> str:
        names: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                names.append(ancestor.name)
        return ".".join(reversed(names))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- name resolution ----------------------------------------------------------

    def _import_map(self) -> Dict[str, str]:
        """Local name → dotted target, from this module's import statements.

        ``import struct`` maps ``struct → struct``; ``from .storage import
        pack_block`` (in ``repro.core.streaming``) maps ``pack_block →
        repro.core.storage.pack_block``.  Relative imports resolve against
        the module's own package path so repo-internal provenance — "was this
        name imported from the blessed emitter module?" — is exact.
        """
        mapping: Dict[str, str] = {}
        package = self.module_name.rsplit(".", 1)[0] if self.module_name else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mapping[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = self.module_name.split(".")
                    # level=1 strips the module segment, each extra level one
                    # package more.
                    base_parts = base_parts[:len(base_parts) - node.level]
                    base = ".".join(base_parts)
                else:
                    base = ""
                prefix = ".".join(part for part in (base, node.module or "")
                                  if part)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mapping[local] = ".".join(
                        part for part in (prefix, alias.name) if part)
        _ = package
        return mapping

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression, import-aware, or None.

        ``struct.pack`` resolves to ``struct.pack`` when ``import struct``
        is in effect; a name imported ``from repro.core.storage`` resolves to
        its fully qualified origin.  Unresolvable expressions (calls,
        subscripts) return None.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def text_of(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - defensive
            return ""

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- suppressions ---------------------------------------------------------------

    def _scan_suppressions(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except tokenize.TokenError:  # pragma: no cover - ast already parsed
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = tuple(part.strip().upper()
                        for part in match.group(1).split(",") if part.strip())
            reason = (match.group(2) or "").strip()
            line = token.start[0]
            suppression = _Suppression(ids=ids, reason=reason,
                                       comment_line=line)
            if not ids or not reason:
                self.bad_suppressions.append(suppression)
                continue
            target = line
            stripped = self.lines[line - 1].lstrip() if line <= len(self.lines) else ""
            if stripped.startswith("#"):
                # Standalone comment: guards the next code line.
                target = line + 1
                while (target <= len(self.lines)
                       and (not self.lines[target - 1].strip()
                            or self.lines[target - 1].lstrip().startswith("#"))):
                    target += 1
            self.suppressions[target] = suppression

    def suppression_for(self, rule_id: str, line: int) -> Optional[_Suppression]:
        suppression = self.suppressions.get(line)
        if suppression and rule_id.upper() in suppression.ids:
            return suppression
        return None


class Rule:
    """One checkable invariant: id, severity, docs, and a module checker."""

    id: str = ""
    name: str = ""
    severity: str = Severity.ERROR
    #: One-paragraph statement of the contract (shown by ``--list-rules``).
    contract: str = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=module.enclosing_symbol(node),
            snippet=module.line_text(line),
        )


_RULES: Dict[str, Rule] = {}


def register_rule(rule_cls: Callable[[], Rule]):
    """Class decorator: instantiate and register a rule under its id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls!r} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_by_id(rule_id: str) -> Rule:
    rule = _RULES.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule id {rule_id!r}; known rules: {known}")
    return rule


def _normalize(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/")


@dataclass
class LintEngine:
    """Runs a set of rules over sources and applies inline suppressions."""

    rules: List[Rule] = field(default_factory=all_rules)

    def lint_source(self, source: str, path: str) -> List[Finding]:
        """Lint one in-memory module (the unit the property tests drive)."""
        try:
            module = ModuleInfo(source, path)
        except SyntaxError as error:
            return [Finding(rule=META_RULE_ID, severity=Severity.ERROR,
                            path=_normalize(path), line=error.lineno or 1,
                            col=(error.offset or 0) + 1,
                            message=f"file does not parse: {error.msg}")]
        findings: List[Finding] = []
        for bad in module.bad_suppressions:
            findings.append(Finding(
                rule=META_RULE_ID, severity=Severity.ERROR, path=module.path,
                line=bad.comment_line, col=1,
                message=("suppression comment is missing its mandatory "
                         "reason (write `# repro-lint: disable=RLxxx "
                         "<why this is safe>`); the suppression was NOT "
                         "applied"),
                symbol="", snippet=module.line_text(bad.comment_line)))
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                suppression = module.suppression_for(finding.rule,
                                                     finding.line)
                if suppression is not None:
                    finding = replace(finding, status=STATUS_SUPPRESSED,
                                      justification=suppression.reason)
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        findings: List[Finding] = []
        for file_path in iter_python_files(paths):
            findings.extend(self.lint_file(file_path))
        return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted, with
    caches and hidden directories skipped."""
    seen: set = set()
    for path in paths:
        if os.path.isfile(path):
            normalized = _normalize(path)
            if normalized not in seen:
                seen.add(normalized)
                yield normalized
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames
                if not name.startswith(".") and name != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                normalized = _normalize(os.path.join(dirpath, filename))
                if normalized not in seen:
                    seen.add(normalized)
                    yield normalized


def lint_source(source: str, path: str,
                rules: Optional[List[Rule]] = None) -> List[Finding]:
    return LintEngine(rules=rules or all_rules()).lint_source(source, path)


def lint_paths(paths: Iterable[str],
               rules: Optional[List[Rule]] = None) -> List[Finding]:
    return LintEngine(rules=rules or all_rules()).lint_paths(paths)
