"""Table 3 — the seven optimization case studies of paper §6.

Each case study follows the paper's workflow: profile the workload with
DeepContext, run the relevant analysis client, verify that the expected issue
is flagged, apply the suggested optimisation, and measure the improvement.
Speedups are measured in simulated GPU / end-to-end time, so absolute values
differ from the paper but the direction and rough magnitude are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analyzer import (
    CpuLatencyAnalysis,
    ForwardBackwardAnalysis,
    HotspotAnalysis,
    KernelFusionAnalysis,
    StallAnalysis,
)
from ..dlmonitor.callpath import FrameKind
from ..workloads import create_workload
from .runner import (
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_NONE,
    RunResult,
    run_workload,
)


@dataclass
class CaseStudyResult:
    """One row of Table 3, plus the evidence backing it."""

    case_id: int
    model: str
    dataset: str
    platform: str
    analysis_client: int
    analysis_name: str
    optimization: str
    baseline_seconds: Optional[float] = None
    optimized_seconds: Optional[float] = None
    issues_found: List[str] = field(default_factory=list)
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        if not self.baseline_seconds or not self.optimized_seconds:
            return None
        return self.baseline_seconds / self.optimized_seconds

    def as_row(self) -> Dict[str, object]:
        speedup = self.speedup
        return {
            "Deep Learning Model": self.model,
            "Dataset": self.dataset,
            "Platform": self.platform,
            "Analysis Client": f"{self.analysis_client} {self.analysis_name}",
            "Optimization Method": self.optimization,
            "Speedup": f"{speedup:.2f}x" if speedup is not None else "N/A",
        }


def _gpu_seconds(result: RunResult) -> float:
    return result.gpu_kernel_seconds


# ---------------------------------------------------------------------------
# Case studies 1 & 2 — forward/backward operator analysis (§6.1)
# ---------------------------------------------------------------------------

def case_study_dlrm_index(iterations: int = 2, small: bool = True) -> CaseStudyResult:
    """DLRM-small: replace ``aten::index`` with ``aten::index_select`` (1.66x in the paper)."""
    profiled = run_workload(create_workload("dlrm", small=small), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations)
    analysis = ForwardBackwardAnalysis(ratio=2.0, min_backward_seconds=1e-5)
    issues = analysis.analyze(profiled.database.tree)
    index_issues = [issue for issue in issues if "aten::index" in issue.message]

    baseline = run_workload(create_workload("dlrm", small=small), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(create_workload("dlrm", small=small, use_index_select=True),
                             device="a100", profiler=PROFILER_NONE, iterations=iterations)
    return CaseStudyResult(
        case_id=1, model="DLRM-small", dataset="Criteo 1TB", platform="Nvidia",
        analysis_client=3, analysis_name="Forward/Backward Operator Analysis",
        optimization="replace aten::index with aten::index_select",
        baseline_seconds=_gpu_seconds(baseline),
        optimized_seconds=_gpu_seconds(optimized),
        issues_found=[issue.message for issue in index_issues],
        details={
            "index_backward_ratio": max((issue.metrics.get("ratio", 0.0)
                                         for issue in index_issues), default=0.0),
            "baseline_kernels": float(baseline.kernel_launches),
            "optimized_kernels": float(optimized.kernel_launches),
        },
    )


def case_study_gnn_index(iterations: int = 2, small: bool = True) -> CaseStudyResult:
    """GNN: the same aten::index replacement, smaller gain (1.07x in the paper)."""
    profiled = run_workload(create_workload("gnn", small=small), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations)
    analysis = ForwardBackwardAnalysis(ratio=2.0, min_backward_seconds=1e-6)
    issues = [issue for issue in analysis.analyze(profiled.database.tree)
              if "aten::index" in issue.message]

    baseline = run_workload(create_workload("gnn", small=small), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(create_workload("gnn", small=small, use_index_select=True),
                             device="a100", profiler=PROFILER_NONE, iterations=iterations)
    return CaseStudyResult(
        case_id=2, model="GNN", dataset="OGBG-MOLPCBA", platform="Nvidia",
        analysis_client=3, analysis_name="Forward/Backward Operator Analysis",
        optimization="replace aten::index with aten::index_select",
        baseline_seconds=_gpu_seconds(baseline),
        optimized_seconds=_gpu_seconds(optimized),
        issues_found=[issue.message for issue in issues],
    )


# ---------------------------------------------------------------------------
# Case study 3 — hotspot identification with call path (§6.2)
# ---------------------------------------------------------------------------

def case_study_unet_layout(iterations: int = 2, small: bool = True) -> CaseStudyResult:
    """U-Net: avoid channels_first -> channels_last conversions (1.28x in the paper)."""
    profiled = run_workload(create_workload("unet", small=small), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations)
    hotspot_issues = HotspotAnalysis(hotspot_threshold=0.01).analyze(profiled.database.tree)
    conversion_issues = [issue for issue in hotspot_issues
                         if "nchwToNhwc" in issue.node_name or "nhwcToNchw" in issue.node_name]
    # The bottom-up view aggregates the conversion kernels across every calling
    # context; that aggregate share is what the paper reports (15.4%).
    kernel_totals = profiled.database.tree.aggregate_by_name(kind=FrameKind.GPU_KERNEL)
    conversion_fraction = sum(value for name, value in kernel_totals.items()
                              if "Nhwc" in name or "Nchw" in name)
    total_gpu = profiled.database.total_gpu_time() or 1.0
    if not conversion_issues and conversion_fraction / total_gpu > 0.05:
        conversion_issues = list(hotspot_issues)  # fall back to all hotspots

    baseline = run_workload(create_workload("unet", small=small), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(create_workload("unet", small=small, channels_last=True),
                             device="a100", profiler=PROFILER_NONE, iterations=iterations)
    return CaseStudyResult(
        case_id=3, model="UNet", dataset="fastMRI", platform="Nvidia",
        analysis_client=1, analysis_name="Hotspot Identification",
        optimization="avoid channels_first to channels_last conversion",
        baseline_seconds=_gpu_seconds(baseline),
        optimized_seconds=_gpu_seconds(optimized),
        issues_found=[issue.message for issue in conversion_issues] or
                     [f"cudnn layout conversion kernels take "
                      f"{conversion_fraction / total_gpu:.1%} of GPU time"],
        details={"conversion_gpu_fraction": conversion_fraction / total_gpu},
    )


# ---------------------------------------------------------------------------
# Case study 4 — CPU latency analysis (§6.4)
# ---------------------------------------------------------------------------

def case_study_unet_dataloader(iterations: int = 2, small: bool = True,
                               physical_cores: int = 6) -> CaseStudyResult:
    """U-Net: match data-loading workers to physical cores (1.15x in the paper)."""
    # Calibrate the synthetic disk-load CPU cost against the compute time so the
    # input pipeline is a meaningful (but not overwhelming) share of the run.
    compute_only = run_workload(create_workload("unet", small=small), device="a100",
                                profiler=PROFILER_NONE, iterations=iterations)
    load_cpu_seconds = max(0.05, 2.0 * compute_only.virtual_seconds)

    def unet_with_workers(num_workers: int):
        return create_workload("unet", small=small, num_workers=num_workers,
                               physical_cores=physical_cores,
                               initial_load_cpu_seconds=load_cpu_seconds)

    profiled = run_workload(unet_with_workers(16), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations)
    analysis = CpuLatencyAnalysis(cpu_threshold=2.0, min_cpu_seconds=load_cpu_seconds / 64)
    issues = analysis.analyze(profiled.database.tree)
    data_issues = [issue for issue in issues
                   if "data_selection" in issue.node_name or "worker" in issue.node_name
                   or "make_batch" in issue.node_name]

    baseline = run_workload(unet_with_workers(16), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(unet_with_workers(8), device="a100",
                             profiler=PROFILER_NONE, iterations=iterations)
    return CaseStudyResult(
        case_id=4, model="UNet", dataset="fastMRI", platform="Nvidia",
        analysis_client=5, analysis_name="CPU Latency Analysis",
        optimization="match worker_num with #CPU cores",
        baseline_seconds=baseline.virtual_seconds,
        optimized_seconds=optimized.virtual_seconds,
        issues_found=[issue.message for issue in (data_issues or issues)],
        details={"load_cpu_seconds": load_cpu_seconds,
                 "physical_cores": float(physical_cores)},
    )


# ---------------------------------------------------------------------------
# Case study 5 — kernel fusion analysis (§6.3)
# ---------------------------------------------------------------------------

def case_study_transformer_fusion(iterations: int = 2, small: bool = True) -> CaseStudyResult:
    """Transformer-Big: fuse the small softmax/copy/nll_loss kernels (1.06x in the paper)."""
    profiled = run_workload(create_workload("transformer_big", small=small), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations)
    analysis = KernelFusionAnalysis(gpu_threshold_seconds=200e-6, min_kernels=3)
    issues = analysis.analyze(profiled.database.tree)
    loss_issues = [issue for issue in issues if "loss" in issue.node_name.lower()]

    baseline = run_workload(create_workload("transformer_big", small=small), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(create_workload("transformer_big", small=small, fused_loss=True),
                             device="a100", profiler=PROFILER_NONE, iterations=iterations)
    return CaseStudyResult(
        case_id=5, model="Transformer-Big", dataset="WMT", platform="Nvidia",
        analysis_client=2, analysis_name="Kernel Fusion Analysis",
        optimization="fuse small kernels using torch.compile",
        baseline_seconds=_gpu_seconds(baseline),
        optimized_seconds=_gpu_seconds(optimized),
        issues_found=[issue.message for issue in (loss_issues or issues)],
        details={"baseline_kernels": float(baseline.kernel_launches),
                 "optimized_kernels": float(optimized.kernel_launches)},
    )


# ---------------------------------------------------------------------------
# Case study 6 — fine-grained stall analysis (§6.7)
# ---------------------------------------------------------------------------

def case_study_llama_stalls(iterations: int = 1, small: bool = True) -> CaseStudyResult:
    """Llama 3 low-precision inference: conversion kernels stall on constant memory."""
    profiled = run_workload(create_workload("llama3", small=small), device="a100",
                            profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=iterations,
                            pc_sampling=True)
    analysis = StallAnalysis(stall_threshold=1.0, hotspot_threshold=0.002, top_k=3)
    issues = analysis.analyze(profiled.database.tree)
    conversion_issues = [issue for issue in issues if "CUDAFunctor_to" in issue.node_name]
    breakdown = analysis.stall_breakdown(profiled.database.tree)

    # The suggested optimisation: vectorised / fused conversions in LlamaRMSNorm.
    baseline = run_workload(create_workload("llama3", small=small), device="a100",
                            profiler=PROFILER_NONE, iterations=iterations)
    optimized = run_workload(create_workload("llama3", small=small, fast_conversion=True),
                             device="a100", profiler=PROFILER_NONE, iterations=iterations)
    return CaseStudyResult(
        case_id=6, model="Llama3", dataset="Sample Prompt", platform="Nvidia",
        analysis_client=4, analysis_name="Fine-grained Stall Analysis",
        optimization="use fast data type conversion instructions",
        baseline_seconds=None,      # the paper reports N/A for this case
        optimized_seconds=None,
        issues_found=[issue.message for issue in (conversion_issues or issues)],
        details={
            "constant_memory_stalls": breakdown.get("constant_memory_dependency", 0.0),
            "math_dependency_stalls": breakdown.get("math_dependency", 0.0),
            "baseline_gpu_seconds": _gpu_seconds(baseline),
            "optimized_gpu_seconds": _gpu_seconds(optimized),
        },
    )


# ---------------------------------------------------------------------------
# Case study 7 — AMD vs Nvidia (§6.5)
# ---------------------------------------------------------------------------

def case_study_unet_amd_vs_nvidia(iterations: int = 2, small: bool = True) -> CaseStudyResult:
    """U-Net on both platforms: the AMD hotspot shifts to instance norm."""

    def top_operator(device: str) -> Dict[str, float]:
        run = run_workload(create_workload("unet", small=small, channels_last=True),
                           device=device, profiler=PROFILER_DEEPCONTEXT_NATIVE,
                           iterations=iterations)
        totals: Dict[str, float] = {}
        analysis = ForwardBackwardAnalysis()
        for op_name, entry in analysis.operator_times(run.database.tree).items():
            totals[op_name] = entry["forward"] + entry["backward"]
        return totals

    nvidia_totals = top_operator("a100")
    amd_totals = top_operator("mi250")
    nvidia_top = max(nvidia_totals, key=nvidia_totals.get)
    amd_top = max(amd_totals, key=amd_totals.get)

    def fraction(totals: Dict[str, float], op_name: str) -> float:
        total = sum(totals.values()) or 1.0
        return totals.get(op_name, 0.0) / total

    return CaseStudyResult(
        case_id=7, model="UNet", dataset="fastMRI", platform="AMD & Nvidia",
        analysis_client=1, analysis_name="Hotspot Identification",
        optimization="adjust number of threads per CTA",
        baseline_seconds=None, optimized_seconds=None,   # N/A in the paper
        issues_found=[f"Nvidia hotspot operator: {nvidia_top}",
                      f"AMD hotspot operator: {amd_top}"],
        details={
            "nvidia_conv_fraction": fraction(nvidia_totals, "aten::conv2d"),
            "nvidia_instance_norm_fraction": fraction(nvidia_totals, "aten::instance_norm"),
            "amd_conv_fraction": fraction(amd_totals, "aten::conv2d"),
            "amd_instance_norm_fraction": fraction(amd_totals, "aten::instance_norm"),
        },
    )


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

ALL_CASE_STUDIES = (
    case_study_dlrm_index,
    case_study_gnn_index,
    case_study_unet_layout,
    case_study_unet_dataloader,
    case_study_transformer_fusion,
    case_study_llama_stalls,
    case_study_unet_amd_vs_nvidia,
)


def run_all_case_studies(iterations: int = 2, small: bool = True) -> List[CaseStudyResult]:
    """Run all seven case studies (Table 3) and return their results."""
    results: List[CaseStudyResult] = []
    for case_study in ALL_CASE_STUDIES:
        if case_study is case_study_llama_stalls:
            results.append(case_study(iterations=1, small=small))
        else:
            results.append(case_study(iterations=iterations, small=small))
    return results


def format_table3(results: List[CaseStudyResult]) -> str:
    """Plain-text rendering of Table 3."""
    columns = ["Deep Learning Model", "Dataset", "Platform", "Analysis Client",
               "Optimization Method", "Speedup"]
    rows = [result.as_row() for result in results]
    widths = {column: max(len(column), max(len(str(row[column])) for row in rows))
              for column in columns}
    lines = ["  ".join(column.ljust(widths[column]) for column in columns)]
    for row in rows:
        lines.append("  ".join(str(row[column]).ljust(widths[column]) for column in columns))
    return "\n".join(lines)
