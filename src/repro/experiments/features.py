"""Table 1 — feature matrix of DeepContext vs existing profiling tools.

DeepContext's and the baselines' rows are derived from the implementations in
this repository (which call-path sources the profiler integrates, what the
trace-based baselines record); the vendor tools we do not reimplement (Nsight
Systems, RocTracer standalone) are included as static rows taken from the
paper so the regenerated table has the same shape.
"""

from __future__ import annotations

from typing import Dict, List

from ..baselines.jax_profiler import JaxProfilerBaseline
from ..baselines.torch_profiler import TorchProfilerBaseline
from ..core.config import ProfilerConfig

FEATURE_COLUMNS = (
    "python_context",
    "framework_context",
    "cpp_context",
    "device_context",
    "cross_gpus",
    "cross_frameworks",
    "cpu_profiling",
)

FEATURE_LABELS = {
    "python_context": "Python Context",
    "framework_context": "Framework Context",
    "cpp_context": "C++ Context",
    "device_context": "Device Context",
    "cross_gpus": "Cross GPUs",
    "cross_frameworks": "Cross Frameworks",
    "cpu_profiling": "CPU Profiling",
}

#: Vendor tools not reimplemented here — rows reproduced from the paper.
STATIC_ROWS: Dict[str, Dict[str, bool]] = {
    "Nsight Systems": {
        "python_context": True, "framework_context": False, "cpp_context": True,
        "device_context": False, "cross_gpus": False, "cross_frameworks": True,
        "cpu_profiling": True,
    },
    "RocTracer": {
        "python_context": False, "framework_context": False, "cpp_context": False,
        "device_context": False, "cross_gpus": False, "cross_frameworks": False,
        "cpu_profiling": False,
    },
}


def deepcontext_features(config: ProfilerConfig = None) -> Dict[str, bool]:
    """DeepContext's feature row, derived from its configuration surface."""
    config = config or ProfilerConfig.full()
    return {
        "python_context": config.collect_python,
        "framework_context": config.collect_framework,
        "cpp_context": config.collect_native,
        # Device context = kernel frames plus fine-grained instruction samples.
        "device_context": config.collect_gpu,
        # The same profiler attaches CUPTI on Nvidia and RocTracer on AMD.
        "cross_gpus": True,
        # DLMonitor supports both the eager (PyTorch-like) and JIT (JAX-like) modes.
        "cross_frameworks": True,
        "cpu_profiling": config.collect_cpu_time,
    }


def table1_matrix() -> List[Dict[str, object]]:
    """The full Table-1 matrix as a list of rows (tool name + feature booleans)."""
    rows: List[Dict[str, object]] = []
    for tool, features in STATIC_ROWS.items():
        rows.append({"tool": tool, **features})
    rows.append({"tool": "JAX profiler", **JaxProfilerBaseline.features})
    rows.append({"tool": "PyTorch profiler", **TorchProfilerBaseline.features})
    rows.append({"tool": "DeepContext", **deepcontext_features()})
    return rows


def format_table1(rows: List[Dict[str, object]] = None) -> str:
    """Plain-text rendering of Table 1 (✓ / ×)."""
    rows = rows if rows is not None else table1_matrix()
    header = ["Profiling Tool"] + [FEATURE_LABELS[c] for c in FEATURE_COLUMNS]
    widths = [max(len(header[0]), max(len(str(r["tool"])) for r in rows))]
    widths += [len(h) for h in header[1:]]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in rows:
        cells = [str(row["tool"]).ljust(widths[0])]
        for column, width in zip(FEATURE_COLUMNS, widths[1:]):
            cells.append(("✓" if row[column] else "×").ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def deepcontext_dominates() -> bool:
    """True when DeepContext's row covers every feature of every other tool."""
    rows = table1_matrix()
    deepcontext = next(row for row in rows if row["tool"] == "DeepContext")
    for row in rows:
        if row["tool"] == "DeepContext":
            continue
        for column in FEATURE_COLUMNS:
            if row[column] and not deepcontext[column]:
                return False
    return True
