"""Shared run harness: execute a workload in eager or JIT mode, with any profiler.

This is the code every benchmark and example builds on: create an engine for a
device, build a workload, optionally attach DeepContext or a baseline
profiler, run N iterations, and report virtual time, wall-clock time, kernel
counts and profile size.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analyzer import (PerformanceAnalyzer, RegressionAnalysis,
                        attach_issues, quarantine_issues)
from ..analyzer.report import AnalysisReport
from ..baselines import baseline_for
from ..core import DeepContextProfiler, ProfilerConfig
from ..core import metrics as M
from ..core.database import ProfileDatabase
from ..fleet import LATEST_ALIASES, ProfileStore, RunRecord
from ..obs import TELEMETRY, HealthTimeSeries
from ..framework.eager import EagerEngine
from ..framework.jit import JitCompiler, jit
from ..workloads import create_workload
from ..workloads.base import Workload

# Profiler configurations compared in Figure 6.
PROFILER_NONE = "none"
PROFILER_FRAMEWORK = "framework_profiler"
PROFILER_DEEPCONTEXT = "deepcontext"
PROFILER_DEEPCONTEXT_NATIVE = "deepcontext_native"

PROFILER_KINDS = (PROFILER_NONE, PROFILER_FRAMEWORK, PROFILER_DEEPCONTEXT,
                  PROFILER_DEEPCONTEXT_NATIVE)

MODE_EAGER = "eager"
MODE_JIT = "jit"


@dataclass
class RunResult:
    """Everything one run of (workload, device, mode, profiler) produced."""

    workload: str
    device: str
    mode: str
    profiler: str
    iterations: int
    wall_seconds: float
    virtual_seconds: float
    gpu_kernel_seconds: float
    kernel_launches: int
    op_count: int
    profile_bytes: int = 0
    app_bytes: int = 0
    database: Optional[ProfileDatabase] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Catalog id this run was ingested under (``store_path`` runs only).
    store_run_id: str = ""
    #: Catalog id of the baseline the run was diffed against ("" = no diff).
    baseline_run_id: str = ""
    #: The analyzer report of the ``baseline`` flow (regression issues are
    #: ``report.by_analysis("regression")``, flagged in rank order).
    report: Optional[AnalysisReport] = None
    #: Telemetry metrics snapshot (``Telemetry.snapshot()``) captured at the
    #: end of the run — only for ``telemetry=True``/``trace_path`` runs.
    telemetry: Optional[Dict] = None

    @property
    def memory_overhead(self) -> float:
        """(application + profile) / application footprint ratio."""
        if self.app_bytes <= 0:
            return 1.0
        return (self.app_bytes + self.profile_bytes) / self.app_bytes


def profiler_config_for(kind: str, program_name: str) -> Optional[ProfilerConfig]:
    if kind == PROFILER_DEEPCONTEXT:
        config = ProfilerConfig.without_native()
    elif kind == PROFILER_DEEPCONTEXT_NATIVE:
        config = ProfilerConfig(collect_native=True)
    else:
        return None
    config.program_name = program_name
    return config


@contextlib.contextmanager
def _telemetry_session(record: bool):
    """Enable the process-wide registry for one run, if nobody else has.

    A registry the caller already enabled is reused untouched (so nested
    harnesses — a benchmark driving many runs under one trace — see a single
    continuous recording); one this session enabled is reset first and
    disabled on the way out, even if the run raises.
    """
    owns = record and not TELEMETRY.enabled
    if owns:
        TELEMETRY.reset()
        TELEMETRY.enable()
    try:
        yield
    finally:
        if owns:
            TELEMETRY.disable()


def run_workload(workload: Workload, device: str = "a100", mode: str = MODE_EAGER,
                 profiler: str = PROFILER_NONE, iterations: int = 3,
                 pc_sampling: bool = False,
                 cpu_sampling: bool = True,
                 profile_path: Optional[str] = None,
                 profile_format: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_interval_s: float = 0.0,
                 profile_compression: Optional[str] = None,
                 store_path: Optional[str] = None,
                 baseline: Optional[str] = None,
                 telemetry: bool = False,
                 trace_path: Optional[str] = None,
                 health_path: Optional[str] = None) -> RunResult:
    """Run ``workload`` under one configuration and collect measurements.

    With ``profile_path`` the resulting profile database is persisted through
    the storage engine (``profile_format`` selects a registered backend —
    "json", "columnar-json", "cct-binary-v1" — defaulting to the profiler
    configuration's ``profile_format``); the on-disk size is reported in
    ``extra["profile_file_bytes"]``.  A profile reloaded later — eagerly from
    JSON or as a lazy mmap-backed view from the binary format — plugs into
    the same analyzers and exporters as the in-memory database.

    With ``checkpoint_path`` the live profile is additionally *streamed*
    during collection: sealed binary checkpoints every
    ``checkpoint_interval_s`` wall seconds (and at start/stop), so a long
    run that crashes recovers its last seal via
    ``repro.core.recover_profile`` and can be inspected in flight through
    ``LazyProfileView.attach``.  ``extra`` reports
    ``profile_checkpoints``/``checkpoint_file_bytes``.
    ``profile_compression`` ("zlib") applies per-block compression to both
    the streamed checkpoints and a binary ``profile_path`` save.

    With ``store_path`` the run joins a fleet: its profile is ingested into
    the :class:`~repro.fleet.ProfileStore` at that directory (workload name
    stamped into the metadata, content-addressed run id reported in
    ``RunResult.store_run_id``).  ``baseline`` additionally diffs the fresh
    profile against a prior catalogued run *before* ingesting — a run id (or
    unique prefix) selects an explicit baseline, ``"latest"`` the most
    recently ingested run of the same workload and device — and runs the
    performance analyzer with a :class:`~repro.analyzer.RegressionAnalysis`
    attached, so regressions land as ranked ``Issue`` records in
    ``RunResult.report`` (and in the stored profile's issue list).  The first
    run of a workload bootstraps: ``baseline="latest"`` with an empty catalog
    simply skips the diff.

    With ``health_path`` (implies telemetry) the run's final metrics
    snapshot is appended to the crash-safe JSONL health time-series at that
    path — the same file a :class:`~repro.fleet.FleetWatcher` feeds, so
    one-shot runs and watched fleets chart on the same axis.

    With ``telemetry=True`` (or ``trace_path``) the self-telemetry layer
    (``repro.obs``) records counters and spans across every seam the run
    touches — runner phases, streaming seals, storage block decodes,
    catalog-lock waits, fleet ingest and queries.  The metrics snapshot is
    attached as ``RunResult.telemetry``; ``trace_path`` additionally writes
    a Chrome ``trace_event`` JSON (plus a ``<trace_path>.metrics.json``
    snapshot) that loads in Perfetto.  A registry the caller already
    enabled is reused and left enabled; one this run enabled is disabled
    on the way out.
    """
    engine = EagerEngine(device)
    jit_compiler = JitCompiler(engine) if mode == MODE_JIT else None

    deepcontext: Optional[DeepContextProfiler] = None
    framework_baseline = None
    config = profiler_config_for(profiler, workload.name)
    if profile_path is not None and config is None:
        raise ValueError(
            f"profile_path requires a DeepContext profiler that produces a "
            f"ProfileDatabase; got profiler={profiler!r}")
    if checkpoint_path is not None and config is None:
        raise ValueError(
            f"checkpoint_path requires a DeepContext profiler that streams a "
            f"ProfileDatabase; got profiler={profiler!r}")
    if store_path is not None and config is None:
        raise ValueError(
            f"store_path requires a DeepContext profiler that produces a "
            f"ProfileDatabase to ingest; got profiler={profiler!r}")
    if baseline is not None and store_path is None:
        raise ValueError("baseline requires store_path: the baseline run is "
                         "looked up in (and this run ingested into) that "
                         "profile store")
    if config is not None:
        config.pc_sampling = pc_sampling
        config.collect_cpu_time = cpu_sampling
        if checkpoint_path is not None:
            config.checkpoint_path = checkpoint_path
            config.checkpoint_interval_s = checkpoint_interval_s
        if profile_compression is not None:
            config.profile_compression = profile_compression
        deepcontext = DeepContextProfiler(engine, config, jit_compiler=jit_compiler)
    elif profiler == PROFILER_FRAMEWORK:
        framework_baseline = baseline_for(engine, execution_mode=mode)

    record_telemetry = (telemetry or trace_path is not None
                        or health_path is not None)
    telemetry_snapshot: Optional[Dict] = None
    with _telemetry_session(record_telemetry), engine:
        with TELEMETRY.span("runner.build", workload=workload.name,
                            device=device, mode=mode):
            workload.build(engine)
        if deepcontext is not None:
            deepcontext.start()
        if framework_baseline is not None:
            framework_baseline.start()

        wall_start = time.perf_counter()
        with TELEMETRY.span("runner.iterate", workload=workload.name,
                            iterations=iterations, mode=mode):
            if mode == MODE_JIT:
                compiled = jit(workload.step_fn(engine), engine=engine,
                               with_grad=workload.training,
                               compiler=jit_compiler)
                for iteration in range(iterations):
                    batch = workload.make_batch(engine, iteration)
                    compiled(*batch)
                    if deepcontext is not None:
                        deepcontext.mark_iteration()
            else:
                for iteration in range(iterations):
                    workload.run_iteration(engine, iteration)
                    if deepcontext is not None:
                        deepcontext.mark_iteration()
            engine.synchronize()
        wall_seconds = time.perf_counter() - wall_start

        database: Optional[ProfileDatabase] = None
        profile_bytes = 0
        extra: Dict[str, float] = {}
        store_run_id = ""
        baseline_run_id = ""
        report: Optional[AnalysisReport] = None
        if deepcontext is not None:
            with TELEMETRY.span("runner.collect", workload=workload.name):
                database = deepcontext.stop()
                profile_bytes = database.size_bytes()
                if profile_path is not None:
                    saved = database.save(profile_path, format=profile_format)
                    extra["profile_file_bytes"] = float(os.path.getsize(saved))
                if checkpoint_path is not None:
                    extra["profile_checkpoints"] = float(
                        deepcontext.checkpoints_written)
                    extra["checkpoint_file_bytes"] = float(
                        os.path.getsize(checkpoint_path))
                if store_path is not None:
                    store_run_id, baseline_run_id, report = _store_and_diff(
                        database, workload, store_path, baseline, extra)
        if framework_baseline is not None:
            buffer = framework_baseline.stop()
            profile_bytes = buffer.size_bytes

        if record_telemetry:
            # Snapshot while still enabled (the session context may disable
            # the registry on exit); the trace goes to disk here too so a
            # crash in later reporting code can't lose it.
            telemetry_snapshot = TELEMETRY.snapshot()
            if trace_path is not None:
                TELEMETRY.export_trace(trace_path)
                TELEMETRY.export_snapshot(f"{trace_path}.metrics.json")
            if health_path is not None:
                row = dict(telemetry_snapshot)
                row["run"] = {"workload": workload.name, "device": device,
                              "mode": mode, "iterations": iterations}
                HealthTimeSeries(health_path).append(row)

    return RunResult(
        workload=workload.name,
        device=device,
        mode=mode,
        profiler=profiler,
        iterations=iterations,
        wall_seconds=wall_seconds,
        virtual_seconds=engine.elapsed_real_time(),
        gpu_kernel_seconds=engine.runtime.total_kernel_seconds,
        kernel_launches=engine.kernel_launches,
        op_count=engine.op_count,
        profile_bytes=profile_bytes,
        app_bytes=workload.approximate_footprint_bytes(),
        database=database,
        extra=extra,
        store_run_id=store_run_id,
        baseline_run_id=baseline_run_id,
        report=report,
        telemetry=telemetry_snapshot,
    )


def _resolve_baseline(store: ProfileStore, baseline: str, workload_name: str,
                      device_name: str) -> Optional[RunRecord]:
    """The catalogued run ``baseline`` names, or None when bootstrapping.

    ``"latest"`` means the most recently ingested run of the same workload on
    the same device (the profile metadata's device name — what the catalog
    stores) — absent on a fleet's first run, which is not an error.  An
    explicit run id that resolves to nothing *is* one.
    """
    if baseline in LATEST_ALIASES:
        return store.latest(workload=workload_name, device=device_name)
    return store.get(baseline)


def _store_and_diff(database: ProfileDatabase, workload: Workload,
                    store_path: str, baseline: Optional[str],
                    extra: Dict[str, float]):
    """The ``store_path``/``baseline`` flow: diff against a prior run, then
    ingest.  The baseline is resolved *before* ingesting so ``"latest"``
    never diffs a run against itself; analysis runs before ingest so the
    stored profile carries the regression issues it was flagged with."""
    database.metadata.workload = workload.name
    store = ProfileStore(store_path)
    baseline_record = None
    if baseline is not None:
        baseline_record = _resolve_baseline(store, baseline, workload.name,
                                            database.metadata.device)
    report: Optional[AnalysisReport] = None
    baseline_run_id = ""
    if baseline_record is not None:
        baseline_view = store.open_view(baseline_record.run_id)
        try:
            analyzer = PerformanceAnalyzer()
            analyzer.register(RegressionAnalysis(baseline=baseline_view))
            report = analyzer.analyze(database)
        finally:
            baseline_view.close()
        baseline_run_id = baseline_record.run_id
        extra["regression_issues"] = float(
            len(report.by_analysis("regression")))
    record = store.ingest(database)
    extra["store_runs"] = float(len(store))
    extra["indexed_runs"] = float(len(store.fleet_index.run_ids()))
    if TELEMETRY.enabled:
        # With telemetry on, exercise a fleet-level rollup for this workload
        # so the run's trace covers the query layer too (catalog lock, index
        # serve/demote, aggregation passes) — and report what it found.
        with store.aggregator(workload=workload.name) as agg:
            agg.top_kernels(k=5)
            extra["fleet_workload_runs"] = float(agg.run_count)
            extra["fleet_gpu_seconds"] = agg.total_metric(M.METRIC_GPU_TIME)
    quarantined = store.quarantined()
    extra["quarantined_runs"] = float(len(quarantined))
    if quarantined:
        # Surface the store's quarantined runs in this run's report, so a
        # fleet whose baselines are rotting is visible from any run that
        # touches it — not only from an explicit scrub.
        if report is None:
            report = AnalysisReport()
        attach_issues(report, quarantine_issues(store))
    return record.run_id, baseline_run_id, report


def run_named_workload(name: str, device: str = "a100", mode: str = MODE_EAGER,
                       profiler: str = PROFILER_NONE, iterations: int = 3,
                       small: bool = True, pc_sampling: bool = False,
                       profile_path: Optional[str] = None,
                       profile_format: Optional[str] = None,
                       checkpoint_path: Optional[str] = None,
                       checkpoint_interval_s: float = 0.0,
                       profile_compression: Optional[str] = None,
                       store_path: Optional[str] = None,
                       baseline: Optional[str] = None,
                       telemetry: bool = False,
                       trace_path: Optional[str] = None,
                       health_path: Optional[str] = None,
                       **workload_options) -> RunResult:
    """Convenience wrapper: build the named workload then :func:`run_workload`."""
    workload = create_workload(name, small=small, **workload_options)
    return run_workload(workload, device=device, mode=mode, profiler=profiler,
                        iterations=iterations, pc_sampling=pc_sampling,
                        profile_path=profile_path, profile_format=profile_format,
                        checkpoint_path=checkpoint_path,
                        checkpoint_interval_s=checkpoint_interval_s,
                        profile_compression=profile_compression,
                        store_path=store_path, baseline=baseline,
                        telemetry=telemetry, trace_path=trace_path,
                        health_path=health_path)
