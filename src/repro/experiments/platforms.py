"""Table 2 — the two evaluation platforms (Nvidia A100, AMD MI250)."""

from __future__ import annotations

from typing import Dict, List

from ..gpu.device import available_devices


def table2_rows() -> List[Dict[str, str]]:
    """One row per platform, with the same columns as the paper's Table 2."""
    return [device.summary_row() for device in available_devices().values()]


def format_table2() -> str:
    rows = table2_rows()
    columns = list(rows[0].keys())
    widths = {column: max(len(column), max(len(row[column]) for row in rows))
              for column in columns}
    lines = ["  ".join(column.ljust(widths[column]) for column in columns)]
    for row in rows:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def platform_differences() -> Dict[str, Dict[str, float]]:
    """The architectural differences case study 6.5 hinges on."""
    devices = available_devices()
    return {
        name: {
            "warp_size": float(spec.warp_size),
            "compute_units": float(spec.compute_units),
            "memory_bandwidth_tbs": spec.memory_bandwidth_gbps / 1000.0,
            "fp32_tflops": spec.peak_fp32_tflops,
        }
        for name, spec in devices.items()
    }
