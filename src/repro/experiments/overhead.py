"""Figure 6 — time and memory overhead sweeps.

For every workload the paper compares four configurations: no profiler, the
framework profiler (PyTorch/JAX profiler), DeepContext without native call
paths, and DeepContext with native call paths ("DeepContext Native"), on both
the Nvidia and AMD platforms, in both eager (PyTorch) and JIT (JAX) modes.

Time overhead is the *wall-clock* ratio of the instrumented run over the
uninstrumented run — the profiler's interception, call-path construction and
aggregation are real Python work here, so the ratio reflects genuine profiling
cost even though the workload itself runs on simulated hardware.  Memory
overhead is the ratio of (application footprint + profile data) to the
application footprint; DeepContext's profile is the aggregated CCT while the
baselines keep one event per operator/kernel occurrence.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..workloads import create_workload, workload_names
from .runner import (
    MODE_EAGER,
    MODE_JIT,
    PROFILER_DEEPCONTEXT,
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_FRAMEWORK,
    PROFILER_NONE,
    RunResult,
    run_workload,
)

#: The three instrumented configurations compared against the uninstrumented run.
COMPARED_PROFILERS = (PROFILER_FRAMEWORK, PROFILER_DEEPCONTEXT, PROFILER_DEEPCONTEXT_NATIVE)


@dataclass
class OverheadRow:
    """One (workload, device, mode) entry of Figure 6."""

    workload: str
    device: str
    mode: str
    baseline_wall_seconds: float
    time_overhead: Dict[str, float] = field(default_factory=dict)
    memory_overhead: Dict[str, float] = field(default_factory=dict)
    kernel_launches: int = 0
    profile_bytes: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "device": self.device,
            "mode": self.mode,
            "time_overhead": dict(self.time_overhead),
            "memory_overhead": dict(self.memory_overhead),
            "kernel_launches": self.kernel_launches,
        }


def measure_overhead(workload_name: str, device: str = "a100", mode: str = MODE_EAGER,
                     iterations: int = 3, small: bool = True,
                     repeats: int = 1) -> OverheadRow:
    """Measure time and memory overhead of every profiler configuration."""

    def run(profiler: str) -> RunResult:
        walls = []
        last: Optional[RunResult] = None
        for _repeat in range(max(1, repeats)):
            workload = create_workload(workload_name, small=small)
            last = run_workload(workload, device=device, mode=mode,
                                profiler=profiler, iterations=iterations)
            walls.append(last.wall_seconds)
        assert last is not None
        last.wall_seconds = statistics.median(walls)
        return last

    baseline = run(PROFILER_NONE)
    row = OverheadRow(
        workload=baseline.workload,
        device=device,
        mode=mode,
        baseline_wall_seconds=baseline.wall_seconds,
        kernel_launches=baseline.kernel_launches,
    )
    baseline_wall = max(baseline.wall_seconds, 1e-9)
    for profiler in COMPARED_PROFILERS:
        result = run(profiler)
        row.time_overhead[profiler] = result.wall_seconds / baseline_wall
        row.memory_overhead[profiler] = result.memory_overhead
        row.profile_bytes[profiler] = float(result.profile_bytes)
    return row


def overhead_sweep(workloads: Optional[Sequence[str]] = None, device: str = "a100",
                   mode: str = MODE_EAGER, iterations: int = 3, small: bool = True,
                   repeats: int = 1) -> List[OverheadRow]:
    """Figure-6-style sweep over a set of workloads on one platform/mode."""
    names = list(workloads) if workloads is not None else workload_names()
    return [measure_overhead(name, device=device, mode=mode, iterations=iterations,
                             small=small, repeats=repeats)
            for name in names]


def median_overheads(rows: Iterable[OverheadRow], which: str = "time") -> Dict[str, float]:
    """Median per-profiler overhead across workloads (the paper's summary numbers)."""
    accumulator: Dict[str, List[float]] = {}
    for row in rows:
        source = row.time_overhead if which == "time" else row.memory_overhead
        for profiler, value in source.items():
            accumulator.setdefault(profiler, []).append(value)
    return {profiler: statistics.median(values) for profiler, values in accumulator.items()}


def memory_growth_with_iterations(workload_name: str, device: str = "a100",
                                  mode: str = MODE_EAGER,
                                  iteration_counts: Sequence[int] = (1, 2, 4, 8),
                                  small: bool = True) -> Dict[str, List[float]]:
    """Profile size vs iteration count: flat for DeepContext, linear for baselines."""
    growth: Dict[str, List[float]] = {PROFILER_FRAMEWORK: [], PROFILER_DEEPCONTEXT: []}
    for iterations in iteration_counts:
        for profiler in (PROFILER_FRAMEWORK, PROFILER_DEEPCONTEXT):
            workload = create_workload(workload_name, small=small)
            result = run_workload(workload, device=device, mode=mode,
                                  profiler=profiler, iterations=iterations)
            growth[profiler].append(float(result.profile_bytes))
    return growth


def format_overhead_rows(rows: Sequence[OverheadRow], which: str = "time") -> str:
    """Plain-text rendering of one Figure-6 panel."""
    lines = [f"{'Workload':18s} {'framework':>10s} {'deepcontext':>12s} {'dc_native':>10s}"]
    for row in rows:
        source = row.time_overhead if which == "time" else row.memory_overhead
        lines.append(
            f"{row.workload:18s} "
            f"{source.get(PROFILER_FRAMEWORK, 0.0):10.2f} "
            f"{source.get(PROFILER_DEEPCONTEXT, 0.0):12.2f} "
            f"{source.get(PROFILER_DEEPCONTEXT_NATIVE, 0.0):10.2f}"
        )
    medians = median_overheads(rows, which)
    lines.append(
        f"{'median':18s} "
        f"{medians.get(PROFILER_FRAMEWORK, 0.0):10.2f} "
        f"{medians.get(PROFILER_DEEPCONTEXT, 0.0):12.2f} "
        f"{medians.get(PROFILER_DEEPCONTEXT_NATIVE, 0.0):10.2f}"
    )
    return "\n".join(lines)


def jax_vs_pytorch(workloads: Sequence[str] = ("dlrm", "unet", "gnn", "resnet"),
                   device: str = "a100", iterations: int = 2,
                   small: bool = True) -> List[Dict[str, float]]:
    """§6.6 — compare eager (PyTorch) vs JIT (JAX) execution of the same models."""
    rows: List[Dict[str, float]] = []
    for name in workloads:
        eager = run_workload(create_workload(name, small=small), device=device,
                             mode=MODE_EAGER, profiler=PROFILER_NONE, iterations=iterations)
        jitted = run_workload(create_workload(name, small=small), device=device,
                              mode=MODE_JIT, profiler=PROFILER_NONE, iterations=iterations)
        rows.append({
            "workload": name,
            "eager_gpu_seconds": eager.gpu_kernel_seconds,
            "jit_gpu_seconds": jitted.gpu_kernel_seconds,
            "eager_kernels": float(eager.kernel_launches),
            "jit_kernels": float(jitted.kernel_launches),
            "speedup": (eager.gpu_kernel_seconds / jitted.gpu_kernel_seconds
                        if jitted.gpu_kernel_seconds else 0.0),
            "kernel_reduction": (1.0 - jitted.kernel_launches / eager.kernel_launches
                                 if eager.kernel_launches else 0.0),
        })
    return rows
