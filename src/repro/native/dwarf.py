"""Simulated DWARF line information.

The paper's performance analyzer maps GPU/CPU instructions back to source code
using DWARF.  Here we keep an explicit table from symbols (and program counters
inside them) to ``(file, line)`` locations, which the analyzer and GUI consume
to implement "open the file at this line" interactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .symbols import AddressSpace, Symbol


@dataclass(frozen=True)
class SourceLocation:
    """A source file / line pair."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


class LineTable:
    """Maps native symbols and PC offsets to source locations."""

    def __init__(self, address_space: Optional[AddressSpace] = None) -> None:
        self._address_space = address_space
        self._by_symbol: Dict[Tuple[str, str], SourceLocation] = {}
        self._by_pc: Dict[int, SourceLocation] = {}

    def add_symbol_location(self, symbol: Symbol, file: str, line: int) -> None:
        """Record the declaration location for a whole symbol."""
        self._by_symbol[(symbol.library, symbol.name)] = SourceLocation(file, line)

    def add_pc_location(self, pc: int, file: str, line: int) -> None:
        """Record an exact location for a single program counter."""
        self._by_pc[pc] = SourceLocation(file, line)

    def lookup_symbol(self, symbol: Symbol) -> Optional[SourceLocation]:
        return self._by_symbol.get((symbol.library, symbol.name))

    def lookup_pc(self, pc: int) -> Optional[SourceLocation]:
        """Best-effort resolution of a PC to a source location.

        Exact PC entries win; otherwise fall back to the symbol containing the
        PC (resolved through the address space when one was provided).
        """
        if pc in self._by_pc:
            return self._by_pc[pc]
        if self._address_space is not None:
            resolved = self._address_space.resolve(pc)
            if resolved and resolved[1] is not None:
                return self.lookup_symbol(resolved[1])
        return None

    def __len__(self) -> int:
        return len(self._by_symbol) + len(self._by_pc)
