"""A libunwind-like API over simulated native stacks.

Each simulated CPU thread maintains a native call stack of :class:`NativeFrame`
records (pushed and popped by the framework and GPU runtime substrates).  The
:class:`Unwinder` exposes the two access patterns DeepContext uses:

* full unwinds (``unwind``), equivalent to walking the whole stack, and
* incremental, bottom-up stepping (``cursor`` / ``step``), equivalent to
  ``unw_step``; the call-path cache uses this to stop unwinding as soon as the
  cached deep-learning operator frame is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from .symbols import AddressSpace, Symbol


@dataclass(frozen=True)
class NativeFrame:
    """One frame of a simulated native (C/C++) call stack."""

    symbol: Symbol
    pc: int

    @property
    def function(self) -> str:
        return self.symbol.name

    @property
    def library(self) -> str:
        return self.symbol.library

    def __str__(self) -> str:
        return f"{self.symbol.name}+0x{self.pc - self.symbol.address:x} ({self.symbol.library})"


class NativeStack:
    """A per-thread native stack manipulated by the simulated C++ runtime."""

    def __init__(self) -> None:
        self._frames: List[NativeFrame] = []

    def push(self, symbol: Symbol, offset: int = 0x10) -> NativeFrame:
        frame = NativeFrame(symbol=symbol, pc=symbol.address + offset)
        self._frames.append(frame)
        return frame

    def pop(self) -> NativeFrame:
        if not self._frames:
            raise IndexError("native stack is empty")
        return self._frames.pop()

    def top(self) -> Optional[NativeFrame]:
        return self._frames[-1] if self._frames else None

    @property
    def frames(self) -> Sequence[NativeFrame]:
        """Frames ordered from the outermost caller to the innermost callee."""
        return tuple(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    def __len__(self) -> int:
        return len(self._frames)


class UnwindCursor:
    """Steps through a native stack from the innermost frame outwards."""

    def __init__(self, frames: Sequence[NativeFrame]) -> None:
        self._frames = list(frames)
        self._index = len(self._frames)
        self.steps = 0

    def step(self) -> Optional[NativeFrame]:
        """Return the next frame going towards the caller, or ``None`` at the top."""
        if self._index == 0:
            return None
        self._index -= 1
        self.steps += 1
        return self._frames[self._index]

    def __iter__(self) -> Iterator[NativeFrame]:
        frame = self.step()
        while frame is not None:
            yield frame
            frame = self.step()


class Unwinder:
    """The libunwind substitute used by DLMonitor's native call-path source."""

    def __init__(self, address_space: AddressSpace) -> None:
        self.address_space = address_space
        self.full_unwinds = 0
        self.steps = 0

    def unwind(self, stack: NativeStack) -> List[NativeFrame]:
        """Walk the whole stack (outermost first), counting the cost."""
        self.full_unwinds += 1
        self.steps += stack.depth
        return list(stack.frames)

    def cursor(self, stack: NativeStack) -> UnwindCursor:
        """Create a bottom-up cursor equivalent to ``unw_init_local``."""
        return UnwindCursor(stack.frames)

    def charge(self, cursor: UnwindCursor) -> None:
        """Account for the steps an incremental unwind actually performed."""
        self.steps += cursor.steps

    def resolve(self, frame: NativeFrame) -> Optional[str]:
        """Resolve the library name of a frame through the address space."""
        return self.address_space.library_of(frame.pc)
