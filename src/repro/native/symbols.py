"""Simulated shared libraries, symbols and the process address space.

The real DeepContext resolves native C/C++ frames through ``libunwind`` and the
dynamic loader (``LD_AUDIT`` records which address ranges belong to which shared
object, in particular ``libpython.so``).  This module provides an equivalent
pure-Python model: libraries own contiguous address ranges, symbols own
sub-ranges inside their library, and an :class:`AddressSpace` resolves program
counters back to ``(library, symbol, offset)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_PAGE = 0x1000


@dataclass(frozen=True)
class Symbol:
    """A native function symbol inside a shared library."""

    name: str
    library: str
    address: int
    size: int = 0x100

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, pc: int) -> bool:
        return self.address <= pc < self.end

    def __str__(self) -> str:
        return f"{self.name} [{self.library}]"


@dataclass
class Library:
    """A simulated shared object mapped into the process address space."""

    name: str
    base: int
    size: int = 0x400000
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    _cursor: int = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, pc: int) -> bool:
        return self.base <= pc < self.end

    def add_symbol(self, name: str, size: int = 0x100) -> Symbol:
        """Add (or return an existing) symbol, laying it out after the last one."""
        if name in self.symbols:
            return self.symbols[name]
        address = self.base + _PAGE + self._cursor
        if address + size >= self.end:
            raise ValueError(f"library {self.name} is out of address space")
        symbol = Symbol(name=name, library=self.name, address=address, size=size)
        self.symbols[name] = symbol
        self._cursor += size
        return symbol

    def symbol_for(self, pc: int) -> Optional[Symbol]:
        for symbol in self.symbols.values():
            if symbol.contains(pc):
                return symbol
        return None


class AddressSpace:
    """The set of libraries loaded into a simulated process.

    This is the information the paper obtains through ``LD_AUDIT``: every
    loaded shared object and its address range, used both to resolve native
    frames and to detect the ``libpython.so`` boundary during call-path
    integration.
    """

    def __init__(self) -> None:
        self._libraries: Dict[str, Library] = {}
        self._next_base = 0x7F0000000000

    def load_library(self, name: str, size: int = 0x400000) -> Library:
        """Map a library; returns the existing mapping if already loaded."""
        if name in self._libraries:
            return self._libraries[name]
        library = Library(name=name, base=self._next_base, size=size)
        self._next_base += size + _PAGE
        self._libraries[name] = library
        return library

    def library(self, name: str) -> Library:
        if name not in self._libraries:
            raise KeyError(f"library not loaded: {name}")
        return self._libraries[name]

    @property
    def libraries(self) -> List[Library]:
        return list(self._libraries.values())

    def add_symbol(self, library: str, symbol: str, size: int = 0x100) -> Symbol:
        """Convenience: load the library if needed and add ``symbol`` to it."""
        return self.load_library(library).add_symbol(symbol, size)

    def resolve(self, pc: int) -> Optional[Tuple[Library, Optional[Symbol]]]:
        """Resolve a program counter to its library and (if known) symbol."""
        for library in self._libraries.values():
            if library.contains(pc):
                return library, library.symbol_for(pc)
        return None

    def library_of(self, pc: int) -> Optional[str]:
        resolved = self.resolve(pc)
        return resolved[0].name if resolved else None

    def is_in_library(self, pc: int, library_name: str) -> bool:
        """True when ``pc`` falls inside the address range of ``library_name``."""
        library = self._libraries.get(library_name)
        return bool(library and library.contains(pc))


# Canonical library names used across the simulation.  Keeping them here avoids
# string drift between the framework, GPU runtime and DLMonitor layers.
LIBPYTHON = "libpython3.so"
LIBTORCH_CPU = "libtorch_cpu.so"
LIBTORCH_CUDA = "libtorch_cuda.so"
LIBTORCH_HIP = "libtorch_hip.so"
LIBCUDNN = "libcudnn.so"
LIBMIOPEN = "libMIOpen.so"
LIBCUDART = "libcudart.so"
LIBAMDHIP = "libamdhip64.so"
LIBXLA = "libxla.so"
LIBC = "libc.so"


def standard_address_space() -> AddressSpace:
    """Build the address space used by the simulated deep-learning stack."""
    space = AddressSpace()
    for name in (
        LIBC,
        LIBPYTHON,
        LIBTORCH_CPU,
        LIBTORCH_CUDA,
        LIBTORCH_HIP,
        LIBCUDNN,
        LIBMIOPEN,
        LIBCUDART,
        LIBAMDHIP,
        LIBXLA,
    ):
        space.load_library(name)
    # A few symbols every run references.
    space.add_symbol(LIBPYTHON, "PyEval_EvalFrameDefault", size=0x4000)
    space.add_symbol(LIBPYTHON, "_PyObject_Call", size=0x1000)
    space.add_symbol(LIBC, "__libc_start_main", size=0x400)
    space.add_symbol(LIBCUDART, "cudaLaunchKernel", size=0x200)
    space.add_symbol(LIBAMDHIP, "hipLaunchKernel", size=0x200)
    return space
