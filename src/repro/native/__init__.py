"""Native-code simulation substrate: address space, symbols, unwinding, DWARF."""

from .dwarf import LineTable, SourceLocation
from .symbols import (
    LIBAMDHIP,
    LIBC,
    LIBCUDART,
    LIBCUDNN,
    LIBMIOPEN,
    LIBPYTHON,
    LIBTORCH_CPU,
    LIBTORCH_CUDA,
    LIBTORCH_HIP,
    LIBXLA,
    AddressSpace,
    Library,
    Symbol,
    standard_address_space,
)
from .unwinder import NativeFrame, NativeStack, UnwindCursor, Unwinder

__all__ = [
    "AddressSpace",
    "Library",
    "Symbol",
    "standard_address_space",
    "NativeFrame",
    "NativeStack",
    "UnwindCursor",
    "Unwinder",
    "LineTable",
    "SourceLocation",
    "LIBPYTHON",
    "LIBTORCH_CPU",
    "LIBTORCH_CUDA",
    "LIBTORCH_HIP",
    "LIBCUDNN",
    "LIBMIOPEN",
    "LIBCUDART",
    "LIBAMDHIP",
    "LIBXLA",
    "LIBC",
]
