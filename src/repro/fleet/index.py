"""The fleet query index: catalog-side columnar aggregates per run.

PR 5's lazy column sums made a fleet query cost one frame table plus one
metric column per shard *per run* — still linear decode work in run count on
every query.  The index pays that decode once, at ingest, and persists what
the standing fleet queries actually consume:

* a **global name dictionary** (``index/names.json``) interning every frame
  display name the store has seen, so per-run summaries store integer ids
  instead of repeating strings;
* a **per-run columnar summary** (``index/runs/<run_id>.json``): for each
  metric, rows of ``(name_id, kind_code, count, sum, min, max, mean, m2)``
  — the exact per-name Welford states ``LazyProfileView.column_name_states``
  computes from the sealed blocks, including the :data:`ALL_KINDS` rollup
  rows an unfiltered ``aggregate_by_name`` needs.

``FleetAggregator`` then answers ``total_metric`` / ``aggregate_by_name`` /
``top_kernels`` — and name-level drift scans — for indexed runs from these
rows alone, in pure dict arithmetic, bit-for-bit equal to the lazy-view
path, without opening a single profile.

Lifecycle contract:

* every index mutation happens under the store's advisory catalog lock
  (``_CatalogLock``) with a temp-file + ``os.replace`` promotion, the same
  crash-safety discipline as ``catalog.json`` (lint rules RL002/RL008 keep
  it that way);
* a summary is **valid** for a record only when its schema version matches
  :data:`INDEX_VERSION`, its digest matches the record's content address,
  and every name id resolves in the dictionary — anything else (including a
  missing or corrupt file) falls back to the lazy-view path for that run,
  reported but never fatal;
* ``ProfileStore.reindex()`` rebuilds summaries (backfilling pre-index
  stores); quarantine invalidates a run's summary, restore and scrub
  rebuild it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..obs import TELEMETRY

#: Schema version stamped into every index file.  Bump on any layout change:
#: readers refuse (and fall back to lazy views) rather than misread.
INDEX_VERSION = 1

#: Store-relative directory the index lives in.
INDEX_DIR = "index"
#: The global name dictionary file (inside ``INDEX_DIR``).
NAMES_NAME = "names.json"
#: Per-run summary directory (inside ``INDEX_DIR``).
RUNS_DIR = "runs"
SUMMARY_SUFFIX = ".json"


@dataclass
class RunSummary:
    """One run's decoded index summary: per-metric per-name Welford states."""

    run_id: str
    #: Full SHA-256 of the canonical profile bytes the summary was computed
    #: from; a summary only serves a record carrying the same digest.
    digest: str
    #: Whole-profile totals per metric (the same floats the catalog record
    #: carries — ``LazyProfileView.total_metric`` at ingest).
    totals: Dict[str, float] = field(default_factory=dict)
    #: ``metric → {(kind_code, name): (count, sum, min, max, mean, m2)}``
    #: including the ``ALL_KINDS`` rows (see ``repro.core.storage``).
    states: Dict[str, Dict[Tuple[int, str], Tuple]] = field(default_factory=dict)

    def metric_names(self) -> List[str]:
        return list(self.totals)

    def name_sums(self, metric: str, kind_code: int) -> Dict[str, float]:
        """``name → sum`` for one metric and kind code, summary row order.

        These are exactly the values ``column_aggregate_by_name`` would
        return for the run (the index rows' ``sum`` fields are computed with
        the same accumulation recurrence), so fleet-level folds over them
        reproduce the lazy-view path bit for bit.
        """
        return {name: state[1]
                for (code, name), state in self.states.get(metric, {}).items()
                if code == kind_code}


class FleetIndex:
    """Reader/writer for one store's on-disk query index.

    All mutation goes through :meth:`write_summary` / :meth:`remove`; reads
    validate before trusting (version, digest, name-id resolution) and
    return ``None`` plus a reason instead of raising, so a rotten index can
    only ever cost the fast path, never a query.
    """

    def __init__(self, root: str, lock_path: str) -> None:
        self.root = os.fspath(root)
        self.lock_path = lock_path
        #: ``(stat signature, names list)`` cache for the name dictionary.
        self._names_cache: Optional[Tuple[Tuple, List[str]]] = None
        #: ``run_id → (file stat signature, record digest, summary, problem)``
        #: — decoded summaries cached per handle so standing queries over an
        #: unchanged store stat each summary once and parse nothing.
        self._summary_cache: Dict[
            str, Tuple[Tuple, str, Optional[RunSummary], Optional[str]]] = {}

    # -- layout ---------------------------------------------------------------------

    @property
    def index_dir(self) -> str:
        return os.path.join(self.root, INDEX_DIR)

    @property
    def names_path(self) -> str:
        return os.path.join(self.index_dir, NAMES_NAME)

    @property
    def runs_dir(self) -> str:
        return os.path.join(self.index_dir, RUNS_DIR)

    def summary_path(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, f"{run_id}{SUMMARY_SUFFIX}")

    def _catalog_lock(self):
        # Deferred import: store.py owns the lock (and imports this module).
        from .store import _CatalogLock

        return _CatalogLock(self.lock_path)

    # -- the global name dictionary ----------------------------------------------------

    def _names_signature(self) -> Optional[Tuple]:
        try:
            stat = os.stat(self.names_path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def names(self) -> Optional[List[str]]:
        """The interned name list (``name_id`` = position), or None when the
        dictionary is missing or unreadable.  Cached behind the file's stat
        signature, so steady-state queries stat once and parse nothing."""
        signature = self._names_signature()
        if signature is None:
            return None
        cached = self._names_cache
        if cached is not None and cached[0] == signature:
            return cached[1]
        try:
            with open(self.names_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if (not isinstance(data, dict)
                or int(data.get("version", 0)) != INDEX_VERSION):
            return None
        names = [str(name) for name in data.get("names", [])]
        self._names_cache = (signature, names)
        return names

    # -- writing ---------------------------------------------------------------------

    def write_summary(self, record, states: Mapping[str, Mapping]) -> None:
        """Persist one run's summary, interning new names as needed.

        ``record`` is the run's catalog :class:`~repro.fleet.store.RunRecord`
        (digest and per-metric totals come from it); ``states`` maps metric
        names to the ``{(kind_code, name): state}`` dicts
        ``LazyProfileView.column_name_states`` returns.  The whole
        read-intern-write cycle runs under the advisory catalog lock so two
        ingesting processes serialize their dictionary appends (ids are
        append-only: an interned name never changes id), and each file write
        is a temp-file + ``os.replace`` promotion — a crash can never leave
        a half-written index file behind.
        """
        os.makedirs(self.runs_dir, exist_ok=True)
        with TELEMETRY.span("fleet.index.build", run_id=record.run_id), \
                self._catalog_lock():
            self._names_cache = None  # re-read under the lock, not from cache
            names = self.names() or []
            ids: Dict[str, int] = {name: i for i, name in enumerate(names)}
            grew = False
            for metric_states in states.values():
                for (_kind_code, name) in metric_states:
                    if name not in ids:
                        ids[name] = len(names)
                        names.append(name)
                        grew = True
            payloads = []
            if grew or self._names_signature() is None:
                payloads.append((self.names_path,
                                 {"version": INDEX_VERSION, "names": names}))
            payloads.append((self.summary_path(record.run_id), {
                "version": INDEX_VERSION,
                "run_id": record.run_id,
                "digest": record.digest,
                "totals": dict(record.metrics),
                "metrics": {
                    metric: [[ids[name], int(kind_code), int(state[0]),
                              state[1], state[2], state[3], state[4], state[5]]
                             for (kind_code, name), state in
                             metric_states.items()]
                    for metric, metric_states in states.items()
                },
            }))
            for index_path, payload in payloads:
                temp_index_path = f"{index_path}.{os.getpid()}.tmp"
                try:
                    with open(temp_index_path, "w", encoding="utf-8") as handle:
                        json.dump(payload, handle)
                    os.replace(temp_index_path, index_path)
                except BaseException:
                    if os.path.exists(temp_index_path):
                        os.unlink(temp_index_path)
                    raise
        self._names_cache = None
        self._summary_cache.pop(record.run_id, None)
        if TELEMETRY.enabled:
            TELEMETRY.count("fleet.index_builds")

    def remove(self, run_id: str) -> bool:
        """Drop one run's summary (quarantine/remove invalidation).

        The dictionary keeps the run's names — ids are append-only so other
        summaries' references stay valid.  Unlink is atomic; no lock needed.
        """
        self._summary_cache.pop(run_id, None)
        try:
            os.unlink(self.summary_path(run_id))
            return True
        except OSError:
            return False

    # -- reading ---------------------------------------------------------------------

    def run_ids(self) -> List[str]:
        """Run ids with a summary file on disk (validity not checked)."""
        try:
            entries = os.listdir(self.runs_dir)
        except OSError:
            return []
        return sorted(entry[:-len(SUMMARY_SUFFIX)] for entry in entries
                      if entry.endswith(SUMMARY_SUFFIX))

    def is_current(self, record) -> bool:
        """Whether the record's summary exists and validates."""
        summary, _problem = self.summary_for(record)
        return summary is not None

    def summary_for(self, record) -> Tuple[Optional[RunSummary], Optional[str]]:
        """``(summary, problem)`` for one catalog record.

        ``(summary, None)`` when the run's summary validates; ``(None,
        None)`` when the run simply has no summary (pre-index store — a
        silent lazy fallback); ``(None, reason)`` when a summary exists but
        cannot be trusted — unparseable, wrong schema version, stale digest,
        or unresolvable name ids.  Never raises: the index accelerates
        queries, it must not be able to fail them.
        """
        path = self.summary_path(record.run_id)
        try:
            stat = os.stat(path)
        except OSError:
            self._summary_cache.pop(record.run_id, None)
            return None, None
        signature = (stat.st_mtime_ns, stat.st_size)
        cached = self._summary_cache.get(record.run_id)
        if (cached is not None and cached[0] == signature
                and cached[1] == record.digest):
            return cached[2], cached[3]
        summary, problem = self._load_summary(path, record)
        self._summary_cache[record.run_id] = (signature, record.digest,
                                              summary, problem)
        if problem is not None and TELEMETRY.enabled:
            # Counted once per fresh validation failure (cache hits on the
            # same rotten file don't re-count): each bump is one summary
            # demoted to the lazy path.
            TELEMETRY.count("fleet.index_demoted")
        return summary, problem

    def _load_summary(self, path: str,
                      record) -> Tuple[Optional[RunSummary], Optional[str]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            return None, f"index summary is unreadable: {error}"
        if not isinstance(data, dict):
            return None, "index summary is not a JSON object"
        version = int(data.get("version", 0))
        if version != INDEX_VERSION:
            return None, (f"index summary has schema version {version}, "
                          f"this build reads version {INDEX_VERSION}")
        if str(data.get("digest", "")) != record.digest:
            return None, ("index summary is stale: its digest does not match "
                          "the run's content address")
        names = self.names()
        if names is None:
            return None, ("the index name dictionary is missing or "
                          "unreadable")
        try:
            states: Dict[str, Dict[Tuple[int, str], Tuple]] = {}
            for metric, rows in dict(data.get("metrics", {})).items():
                decoded: Dict[Tuple[int, str], Tuple] = {}
                for row in rows:
                    (name_id, kind_code, count, total, minimum, maximum,
                     mean, m2) = row
                    if not 0 <= int(name_id) < len(names):
                        raise IndexError(f"name id {name_id} is not in the "
                                         f"dictionary (size {len(names)})")
                    decoded[(int(kind_code), names[int(name_id)])] = (
                        int(count), float(total), float(minimum),
                        float(maximum), float(mean), float(m2))
                states[str(metric)] = decoded
            totals = {str(metric): float(value)
                      for metric, value in dict(data.get("totals", {})).items()}
        except (IndexError, TypeError, ValueError, KeyError) as error:
            return None, (f"index summary rows are malformed or reference "
                          f"unknown name ids: {error}")
        return RunSummary(run_id=record.run_id, digest=record.digest,
                          totals=totals, states=states), None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetIndex({self.index_dir!r}, runs={len(self.run_ids())})"
