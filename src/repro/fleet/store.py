"""The multi-run profile store: a content-addressed run catalog on disk.

A :class:`ProfileStore` turns a directory into a fleet of profiling runs:

* every ingested profile is canonicalised to one sealed ``cct-binary-v1``
  file — whatever it arrived as (a live ``ProfileDatabase``, a JSON profile,
  a sealed binary file, or a crashed/still-growing streamed checkpoint file
  recovered at its last intact seal) — and stored *content-addressed*: the
  run id is the SHA-256 of the canonical bytes, so re-ingesting the same
  profile is a no-op instead of a duplicate catalog row;
* ``catalog.json`` records one :class:`RunRecord` per run — workload,
  platform (device/vendor/framework), a hash of the profiler configuration,
  ingest timestamp, per-metric totals and node/shard counts — so fleet
  queries can filter and rank runs without opening a single profile;
* queries open profiles as mmap-backed ``LazyProfileView``\\ s
  (:meth:`ProfileStore.open_view`), which is what lets the
  :class:`~repro.fleet.aggregate.FleetAggregator` answer fleet-wide
  questions from column sums without hydrating every tree.

Layout::

    <root>/
      catalog.json           # {"version": 1, "runs": [RunRecord...]}
      profiles/<run_id>.cctb # canonical sealed cct-binary-v1 profiles
      index/names.json       # fleet query index: global name dictionary
      index/runs/<id>.json   # fleet query index: per-run columnar summaries

The store is the plug-in point the ROADMAP's remote-backend item attaches
to: a remote implementation ships the same canonical seals and catalog rows
over the wire instead of a local directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..core.database import ProfileDatabase, ProfileMetadata
from ..core.storage import (FORMAT_BINARY_V1, LazyProfileView,
                            ProfileFormatError, backend_for,
                            check_compression, load_profile, recover_profile)
from ..obs import TELEMETRY
from .index import FleetIndex

CATALOG_NAME = "catalog.json"
CATALOG_VERSION = 1
PROFILE_DIR = "profiles"
PROFILE_SUFFIX = ".cctb"
#: Hex digits of the SHA-256 digest used as the run id (the full digest is
#: kept in the record; 16 hex chars = 64 bits, collision-safe for any fleet).
RUN_ID_LENGTH = 16

#: ``latest``-style spellings accepted where a run id is expected.
LATEST_ALIASES = ("latest", "auto")

#: Run health states the catalog records.
STATUS_OK = "ok"
STATUS_QUARANTINED = "quarantined"

#: Advisory catalog lock (sibling of ``catalog.json``).
LOCK_NAME = "catalog.lock"
#: How long a writer waits for the lock before giving up.
LOCK_TIMEOUT_S = 10.0
#: A lock file older than this is presumed abandoned (crashed holder) and
#: broken — catalog writes take milliseconds, so a half-minute-old lock
#: means its owner died between acquire and release.
LOCK_STALE_S = 30.0


class CatalogLockTimeout(TimeoutError):
    """The catalog lock could not be acquired within the bounded wait."""


#: Always-on catalog-lock statistics, kept even while telemetry is
#: disabled: lock contention is exactly the signal one wants *after* an
#: incident, when nobody thought to enable tracing beforehand.  Read via
#: :func:`catalog_lock_stats`; all mutation goes through
#: :func:`_note_lock_wait` under the guard.
_LOCK_STATS_GUARD = threading.Lock()
_LOCK_STATS: Dict[str, float] = {
    "acquires": 0.0,       # successful acquisitions
    "contended": 0.0,      # ...that found the lock file held at least once
    "wait_seconds": 0.0,   # cumulative wall time spent waiting (all outcomes)
    "stale_breaks": 0.0,   # abandoned lock files this process unlinked
    "timeouts": 0.0,       # acquisitions abandoned via CatalogLockTimeout
}


def catalog_lock_stats() -> Dict[str, float]:
    """A copy of the process-wide catalog-lock counters (always on)."""
    with _LOCK_STATS_GUARD:
        return dict(_LOCK_STATS)


def reset_catalog_lock_stats() -> None:
    with _LOCK_STATS_GUARD:
        for key in _LOCK_STATS:
            _LOCK_STATS[key] = 0.0


def _note_lock_wait(waited: float, contended: bool, stale_breaks: int,
                    timed_out: bool) -> None:
    with _LOCK_STATS_GUARD:
        if timed_out:
            _LOCK_STATS["timeouts"] += 1
        else:
            _LOCK_STATS["acquires"] += 1
            if contended:
                _LOCK_STATS["contended"] += 1
        _LOCK_STATS["wait_seconds"] += waited
        _LOCK_STATS["stale_breaks"] += stale_breaks
    if TELEMETRY.enabled:
        TELEMETRY.count("fleet.lock_wait_seconds", waited)
        if timed_out:
            TELEMETRY.count("fleet.lock_timeouts")
        else:
            TELEMETRY.count("fleet.lock_acquires")
        if stale_breaks:
            TELEMETRY.count("fleet.lock_stale_breaks", stale_breaks)


class _CatalogLock:
    """Advisory inter-process lock: ``O_CREAT | O_EXCL`` on a lock file.

    Guards the catalog's read-merge-write cycle so two processes ingesting
    into one store serialize their catalog updates instead of racing (the
    merge alone closes the window only for non-overlapping writes; the lock
    closes it entirely).  Acquisition retries with exponential backoff up to
    a bounded timeout; a stale lock — older than ``stale_s``, i.e. its
    holder crashed between acquire and release — is broken rather than
    waited on forever.
    """

    def __init__(self, path: str, timeout_s: float = LOCK_TIMEOUT_S,
                 stale_s: float = LOCK_STALE_S) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self.stale_s = stale_s

    def acquire(self) -> None:
        started = time.monotonic()
        deadline = started + self.timeout_s
        delay = 0.002
        contended = False
        stale_breaks = 0
        with TELEMETRY.span("fleet.catalog.lock", path=self.path):
            while True:
                try:
                    fd = os.open(self.path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    contended = True
                    try:
                        age = time.time() - os.stat(self.path).st_mtime
                    except OSError:
                        continue  # released between open and stat: retry now
                    if age > self.stale_s:
                        # Break the abandoned lock; the O_EXCL retry
                        # arbitrates between several breakers.
                        try:
                            os.unlink(self.path)
                        except OSError:
                            pass
                        else:
                            stale_breaks += 1
                        continue
                    if time.monotonic() >= deadline:
                        waited = time.monotonic() - started
                        _note_lock_wait(waited, contended, stale_breaks,
                                        timed_out=True)
                        raise CatalogLockTimeout(
                            f"could not acquire catalog lock {self.path!r} "
                            f"within {self.timeout_s}s (waited {waited:.2f}s; "
                            f"held by another ingest/scrub for "
                            f"{age:.1f}s)") from None
                    time.sleep(delay)
                    delay = min(delay * 2, 0.1)
                else:
                    try:
                        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                    finally:
                        os.close(fd)
                    _note_lock_wait(time.monotonic() - started, contended,
                                    stale_breaks, timed_out=False)
                    return

    def release(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "_CatalogLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def config_hash(config: Mapping) -> str:
    """Stable short hash of a profiler configuration mapping.

    Runs with the same knobs hash identically regardless of dict order, so
    the catalog can group "same config, different day" runs for baselining.
    """
    encoded = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """One catalogued run: identity, provenance, and headline numbers."""

    run_id: str
    digest: str
    path: str  # relative to the store root
    workload: str
    program: str = ""
    framework: str = ""
    execution_mode: str = ""
    device: str = ""
    vendor: str = ""
    iterations: int = 0
    config_hash: str = ""
    ingested_at: float = 0.0
    elapsed_virtual_seconds: float = 0.0
    profiler_wall_seconds: float = 0.0
    nodes: int = 0
    shards: int = 0
    #: Whole-profile totals per metric (from the stored file's column sums).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Free-form caller labels ("ci": "nightly", "branch": ...).
    labels: Dict[str, str] = field(default_factory=dict)
    #: Health state: ``STATUS_OK`` or ``STATUS_QUARANTINED``.  Quarantined
    #: runs stay catalogued (their bytes may still be salvageable, and the
    #: record documents *what* rotted) but are excluded from queries.
    status: str = STATUS_OK
    #: Why the run was quarantined ("" while healthy).
    quarantine_reason: str = ""
    #: When it was quarantined (0.0 while healthy).
    quarantined_at: float = 0.0

    @property
    def healthy(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "digest": self.digest,
            "path": self.path,
            "workload": self.workload,
            "program": self.program,
            "framework": self.framework,
            "execution_mode": self.execution_mode,
            "device": self.device,
            "vendor": self.vendor,
            "iterations": self.iterations,
            "config_hash": self.config_hash,
            "ingested_at": self.ingested_at,
            "elapsed_virtual_seconds": self.elapsed_virtual_seconds,
            "profiler_wall_seconds": self.profiler_wall_seconds,
            "nodes": self.nodes,
            "shards": self.shards,
            "metrics": dict(self.metrics),
            "labels": dict(self.labels),
            "status": self.status,
            "quarantine_reason": self.quarantine_reason,
            "quarantined_at": self.quarantined_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        return cls(
            run_id=str(data["run_id"]),
            digest=str(data.get("digest", "")),
            path=str(data["path"]),
            workload=str(data.get("workload", "")),
            program=str(data.get("program", "")),
            framework=str(data.get("framework", "")),
            execution_mode=str(data.get("execution_mode", "")),
            device=str(data.get("device", "")),
            vendor=str(data.get("vendor", "")),
            iterations=int(data.get("iterations", 0)),
            config_hash=str(data.get("config_hash", "")),
            ingested_at=float(data.get("ingested_at", 0.0)),
            elapsed_virtual_seconds=float(data.get("elapsed_virtual_seconds", 0.0)),
            profiler_wall_seconds=float(data.get("profiler_wall_seconds", 0.0)),
            nodes=int(data.get("nodes", 0)),
            shards=int(data.get("shards", 0)),
            metrics={str(k): float(v) for k, v in dict(data.get("metrics", {})).items()},
            labels={str(k): str(v) for k, v in dict(data.get("labels", {})).items()},
            status=str(data.get("status", STATUS_OK)),
            quarantine_reason=str(data.get("quarantine_reason", "")),
            quarantined_at=float(data.get("quarantined_at", 0.0)),
        )

    def matches(self, workload: Optional[str] = None, device: Optional[str] = None,
                config_hash: Optional[str] = None,
                labels: Optional[Mapping[str, str]] = None) -> bool:
        if workload is not None and self.workload != workload:
            return False
        if device is not None and self.device != device:
            return False
        if config_hash is not None and self.config_hash != config_hash:
            return False
        if labels:
            for key, value in labels.items():
                if self.labels.get(key) != value:
                    return False
        return True


@dataclass
class ScrubReport:
    """What one :meth:`ProfileStore.scrub` pass found and did."""

    #: Runs whose profiles were verified this pass.
    checked: int = 0
    #: Runs that verified clean (includes runs restored this pass).
    healthy: List[str] = field(default_factory=list)
    #: Runs newly quarantined this pass, with the corruption description.
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    #: Previously quarantined runs that verified clean and were restored.
    restored: List[str] = field(default_factory=list)
    #: Runs still quarantined from before (re-verified, still bad).
    still_quarantined: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined and not self.still_quarantined

    def as_dict(self) -> Dict[str, object]:
        return {
            "checked": self.checked,
            "healthy": list(self.healthy),
            "quarantined": [list(item) for item in self.quarantined],
            "restored": list(self.restored),
            "still_quarantined": list(self.still_quarantined),
            "clean": self.clean,
        }


@dataclass
class PruneReport:
    """What one :meth:`ProfileStore.prune` retention sweep decided."""

    #: Runs that matched the label filter and were considered.
    examined: int = 0
    #: ``(run_id, reason)`` for every run deleted this sweep.
    pruned: List[Tuple[str, str]] = field(default_factory=list)
    #: Runs examined and retained.
    kept: int = 0
    #: Runs exempted because they carry a protected label key.
    protected: List[str] = field(default_factory=list)

    @property
    def pruned_run_ids(self) -> List[str]:
        return [run_id for run_id, _ in self.pruned]

    def as_dict(self) -> Dict[str, object]:
        return {
            "examined": self.examined,
            "pruned": [list(item) for item in self.pruned],
            "kept": self.kept,
            "protected": list(self.protected),
        }


class ProfileStore:
    """A directory of canonical sealed profiles behind a run catalog.

    ``compression`` ("zlib") applies per-block compression to the canonical
    files this store writes; it is part of the store's canonical form, so
    content addresses are stable within a store but differ from an
    uncompressed store's.  Reads are transparent either way.
    """

    def __init__(self, root: Union[str, os.PathLike],
                 compression: Optional[str] = None) -> None:
        self.root = os.fspath(root)
        self.compression = check_compression(compression)
        os.makedirs(os.path.join(self.root, PROFILE_DIR), exist_ok=True)
        self._records: Dict[str, RunRecord] = {}
        #: Runs this handle removed — kept so a catalog re-merge (see
        #: ``_save_catalog``) does not resurrect them from disk.
        self._removed: set = set()
        #: Catalog generation counter: bumped by every mutation this handle
        #: performs or observes (ingest/remove/quarantine/restore/scrub and
        #: rows adopted during a catalog re-merge).  The ordered-records
        #: cache — and any other derived view — keys off it instead of
        #: re-deriving per call.
        self._generation = 0
        self._ordered_cache: Optional[Tuple[int, List[RunRecord]]] = None
        self._index: Optional[FleetIndex] = None
        self._load_catalog()

    # -- catalog persistence ---------------------------------------------------------

    @property
    def catalog_path(self) -> str:
        return os.path.join(self.root, CATALOG_NAME)

    def _load_catalog(self) -> None:
        path = self.catalog_path
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise ProfileFormatError(
                f"profile store catalog {path!r} is unreadable: "
                f"{error}") from error
        except json.JSONDecodeError as error:
            raise ProfileFormatError(
                f"profile store catalog {path!r} is corrupt (not valid "
                f"JSON at line {error.lineno}): {error.msg}") from error
        version = int(data.get("version", 0))
        if version != CATALOG_VERSION:
            raise ValueError(
                f"profile store at {self.root!r} uses catalog version "
                f"{version}, this build reads version {CATALOG_VERSION}")
        for entry in data.get("runs", []):
            record = RunRecord.from_dict(entry)
            self._records[record.run_id] = record
        self._generation += 1

    @property
    def lock_path(self) -> str:
        return os.path.join(self.root, LOCK_NAME)

    def _save_catalog(self) -> None:
        """Write the catalog: lock, re-read, merge, atomic-replace.

        The whole read-merge-write cycle runs under the advisory catalog
        lock (:class:`_CatalogLock`: ``O_CREAT|O_EXCL`` lock file, bounded
        retry with backoff, stale locks broken), so two handles — two
        experiment runners ingesting into one store, say — serialize their
        updates and *both* runs land in the catalog; without the lock the
        read-merge-write races and the last writer wins.  Under the lock the
        on-disk catalog is re-read and any run unknown to this handle (and
        not removed by it) is adopted before writing; the write itself is a
        sibling temp file promoted with ``os.replace``, so a crash mid-write
        can never leave a half-written ``catalog.json`` behind (and a
        crashed peer's leftover temp file is simply ignored).
        """
        with _CatalogLock(self.lock_path):
            if os.path.exists(self.catalog_path):
                try:
                    with open(self.catalog_path, "r", encoding="utf-8") as handle:
                        on_disk = json.load(handle)
                except ValueError:
                    on_disk = {}  # half-written by a crashed peer: ours wins
                for entry in on_disk.get("runs", []) if isinstance(on_disk, dict) else []:
                    run_id = str(entry.get("run_id", ""))
                    if run_id and run_id not in self._records \
                            and run_id not in self._removed:
                        self._records[run_id] = RunRecord.from_dict(entry)
            # Every caller reaches here with `_records` freshly mutated (an
            # ingest/quarantine/... plus any rows just adopted above): bump
            # *before* serializing so the ordered-records cache cannot serve
            # a pre-mutation list into the catalog write.
            self._generation += 1
            data = {
                "version": CATALOG_VERSION,
                "runs": [record.as_dict() for record in self._ordered_records()],
            }
            temp_path = f"{self.catalog_path}.{os.getpid()}.tmp"
            try:
                with open(temp_path, "w", encoding="utf-8") as handle:
                    json.dump(data, handle, indent=1)
                os.replace(temp_path, self.catalog_path)
            except BaseException:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
                raise

    @property
    def catalog_generation(self) -> int:
        """Monotonic counter of catalog mutations this handle has seen."""
        return self._generation

    def _ordered_records(self) -> List[RunRecord]:
        """Records in global ingest order (``ingested_at``, ties stable).

        The sort is cached behind :attr:`catalog_generation` — ``find`` /
        ``latest`` / iteration used to rescan and re-sort the record map on
        every call, which is pure waste between mutations.  Callers get a
        fresh list (cheap shallow copy) so holding one across a mutation
        cannot alias the cache.
        """
        cached = self._ordered_cache
        if cached is not None and cached[0] == self._generation:
            return list(cached[1])
        ordered = sorted(self._records.values(),
                         key=lambda record: record.ingested_at)
        self._ordered_cache = (self._generation, ordered)
        return list(ordered)

    # -- ingest ---------------------------------------------------------------------------

    @staticmethod
    def _coerce_database(source) -> ProfileDatabase:
        """A :class:`ProfileDatabase` for whatever the caller handed us.

        Paths load through the format-sniffing storage engine; a file that
        fails the strict load because its tail is unsealed — a crashed or
        still-being-streamed checkpoint file — is reopened at its last intact
        seal via :func:`repro.core.storage.recover_profile`, which is exactly
        the live-attach contract the streaming pipeline guarantees.
        """
        if isinstance(source, ProfileDatabase):
            return source
        path = os.fspath(source)
        # Reject the obviously-wrong sources up front with errors that name
        # the path, instead of leaking whatever IsADirectoryError /
        # FileNotFoundError / PermissionError the loader happens to hit.
        if os.path.isdir(path):
            raise ValueError(
                f"cannot ingest {path!r}: it is a directory, not a profile "
                f"file (ingest one profile at a time)")
        if not os.path.exists(path):
            raise ValueError(
                f"cannot ingest {path!r}: no such file")
        if not os.access(path, os.R_OK):
            raise ValueError(
                f"cannot ingest {path!r}: the file is not readable "
                f"(permission denied)")
        try:
            return load_profile(path)
        except ProfileFormatError:
            return recover_profile(path)

    @staticmethod
    def _identity_of(database: ProfileDatabase, workload: Optional[str]) -> str:
        """The run's workload identity, or a clear error when it has none.

        Cataloguing identity-less runs under a default key would silently
        collide every anonymous profile into one bucket, poisoning
        ``latest``-style baseline lookups — so ingest refuses instead.
        """
        if workload:
            return workload
        metadata = database.metadata
        if metadata.workload:
            return metadata.workload
        if metadata.program and metadata.program != "program":
            return metadata.program
        raise ValueError(
            "profile has no workload/run identity: its metadata carries "
            "neither a workload name nor a non-default program name. Set "
            "ProfileMetadata.workload (the experiment runner does) or pass "
            "workload=... to ingest; refusing to catalog the run under a "
            "collision-prone default key")

    def ingest(self, source, workload: Optional[str] = None,
               labels: Optional[Mapping[str, str]] = None) -> RunRecord:
        """Canonicalise, content-address and catalog one run's profile.

        ``source`` may be a :class:`ProfileDatabase` or a path to a profile
        in any registered format — including a streamed checkpoint file that
        is truncated or still being appended to, which is recovered at its
        last intact seal.  Returns the new record, or the existing one when
        the canonical bytes are already catalogued (content addressing).

        Raises ``ValueError`` when the profile carries no workload identity
        (see :meth:`_identity_of`) — anonymous runs are rejected, not
        silently catalogued under a shared default key.
        """
        with TELEMETRY.span("fleet.store.ingest", workload=workload or ""):
            return self._ingest(source, workload, labels)

    def _ingest(self, source, workload: Optional[str],
                labels: Optional[Mapping[str, str]]) -> RunRecord:
        database = self._coerce_database(source)
        owns_view = not isinstance(source, ProfileDatabase)
        identity = self._identity_of(database, workload)
        if database.metadata.workload != identity:
            # The canonical bytes carry the catalog identity, so the content
            # address covers it — the same profile under two identities is
            # two runs, not one ambiguous dedupe.  Stamped onto a *copy*:
            # ingest must not rewrite the caller's live database metadata.
            metadata = ProfileMetadata.from_dict(database.metadata.as_dict())
            metadata.workload = identity
            stamped = ProfileDatabase(database.tree, metadata,
                                      database.dlmonitor_stats)
            stamped.issues = list(database.issues)
            database = stamped

        temp_path = os.path.join(self.root, PROFILE_DIR,
                                 f".ingest-{os.getpid()}-{id(database)}")
        backend = backend_for(FORMAT_BINARY_V1)
        try:
            backend.save(database, temp_path, compression=self.compression)
            digest = self._digest_file(temp_path)
            run_id = digest[:RUN_ID_LENGTH]
            existing = self._records.get(run_id)
            if existing is not None:
                if existing.digest != digest:  # pragma: no cover - 64-bit clash
                    raise ValueError(
                        f"run id collision in store {self.root!r}: {run_id} "
                        f"already maps to digest {existing.digest}")
                if labels:
                    # Re-ingesting known bytes folds new labels into the
                    # existing record instead of silently dropping them.
                    existing.labels.update({str(key): str(value)
                                            for key, value in labels.items()})
                    self._save_catalog()
                if existing.healthy and not self.fleet_index.is_current(existing):
                    # Re-ingesting a run a pre-index store already holds (or
                    # whose summary rotted) heals its index entry for free.
                    self.reindex([existing.run_id])
                if TELEMETRY.enabled:
                    TELEMETRY.count("fleet.ingest_dedup")
                return existing
            relative = os.path.join(PROFILE_DIR, f"{run_id}{PROFILE_SUFFIX}")
            os.replace(temp_path, os.path.join(self.root, relative))
        finally:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            if owns_view:
                close = getattr(database.tree, "close", None)
                if callable(close):
                    close()

        record, states = self._record_for(run_id, digest, relative, database,
                                          identity, labels)
        self._records[run_id] = record
        self._save_catalog()
        # Derived data last: a crash after the catalog write leaves an
        # unindexed run, which queries serve via the lazy fallback and
        # ``reindex``/``scrub`` backfill later.
        self.fleet_index.write_summary(record, states)
        if TELEMETRY.enabled:
            TELEMETRY.count("fleet.ingests")
        return record

    def _record_for(self, run_id: str, digest: str, relative: str,
                    database: ProfileDatabase, identity: str,
                    labels: Optional[Mapping[str, str]]
                    ) -> Tuple[RunRecord, Dict[str, Dict]]:
        metadata = database.metadata
        with backend_for(FORMAT_BINARY_V1).open(
                os.path.join(self.root, relative)) as view:
            totals = {metric: view.total_metric(metric)
                      for metric in view.metric_names()}
            nodes = view.stored_node_count()
            shards = view.shard_count()
            # The index summary is computed while the canonical bytes are
            # already mapped — the one decode pass ingest pays so standing
            # fleet queries never pay it again.
            states = {metric: view.column_name_states(metric)
                      for metric in totals}
        record = RunRecord(
            run_id=run_id,
            digest=digest,
            path=relative,
            workload=identity,
            program=metadata.program,
            framework=metadata.framework,
            execution_mode=metadata.execution_mode,
            device=metadata.device,
            vendor=metadata.vendor,
            iterations=metadata.iterations,
            config_hash=config_hash(metadata.config),
            ingested_at=time.time(),
            elapsed_virtual_seconds=metadata.elapsed_virtual_seconds,
            profiler_wall_seconds=metadata.profiler_wall_seconds,
            nodes=nodes,
            shards=shards,
            metrics=totals,
            labels=dict(labels or {}),
        )
        return record, states

    @staticmethod
    def _digest_file(path: str) -> str:
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    # -- lookup -----------------------------------------------------------------------------

    def runs(self) -> List[RunRecord]:
        """Every catalogued run, global ingest order (``ingested_at``)."""
        return self._ordered_records()

    def run_ids(self) -> List[str]:
        return [record.run_id for record in self._ordered_records()]

    def get(self, run_id: str) -> RunRecord:
        """The record for a run id (unique prefixes accepted)."""
        record = self._records.get(run_id)
        if record is not None:
            return record
        matches = [r for rid, r in self._records.items()
                   if rid.startswith(run_id)] if run_id else []
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous: "
                           f"{[r.run_id for r in matches]}")
        raise KeyError(f"no run {run_id!r} in store {self.root!r}; "
                       f"catalogued runs: {self.run_ids()}")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._records

    def __iter__(self):
        return iter(self._ordered_records())

    def find(self, workload: Optional[str] = None, device: Optional[str] = None,
             config_hash: Optional[str] = None,
             labels: Optional[Mapping[str, str]] = None,
             include_quarantined: bool = False) -> List[RunRecord]:
        """Catalogued runs matching every given filter, ingest order.

        Quarantined runs are excluded by default: a corrupt run must never be
        silently aggregated into a fleet answer or picked as a ``latest``
        baseline.  Pass ``include_quarantined=True`` to inventory them.
        """
        return [record for record in self._ordered_records()
                if (include_quarantined or record.healthy)
                and record.matches(workload=workload, device=device,
                                   config_hash=config_hash, labels=labels)]

    def quarantined(self) -> List[RunRecord]:
        """Every quarantined run, ingest order."""
        return [record for record in self._ordered_records()
                if not record.healthy]

    def latest(self, workload: Optional[str] = None,
               device: Optional[str] = None,
               config_hash: Optional[str] = None) -> Optional[RunRecord]:
        """The most recently ingested matching run (None when there is none)."""
        matching = self.find(workload=workload, device=device,
                             config_hash=config_hash)
        return matching[-1] if matching else None

    # -- profile access ------------------------------------------------------------------------

    def profile_path(self, run_id: str) -> str:
        return os.path.join(self.root, self.get(run_id).path)

    def open_view(self, run_id: str) -> LazyProfileView:
        """The run's profile as a lazy mmap-backed view (nothing decoded)."""
        return backend_for(FORMAT_BINARY_V1).open(self.profile_path(run_id))

    def load(self, run_id: str) -> ProfileDatabase:
        """The run's full :class:`ProfileDatabase` (lazy tree inside)."""
        return ProfileDatabase.load(self.profile_path(run_id))

    def remove(self, run_id: str) -> RunRecord:
        """Delete a run's profile and catalog row; returns the removed record."""
        record = self.get(run_id)
        del self._records[record.run_id]
        self._removed.add(record.run_id)
        path = os.path.join(self.root, record.path)
        if os.path.exists(path):
            os.unlink(path)
        self._save_catalog()
        self.fleet_index.remove(record.run_id)
        return record

    def prune(self, max_age_s: Optional[float] = None,
              max_runs: Optional[int] = None,
              labels: Optional[Mapping[str, str]] = None,
              protect_labels: Tuple[str, ...] = (),
              now: Optional[float] = None) -> PruneReport:
        """Retention sweep: delete runs by age and per-workload count.

        Two independent rules, either or both active:

        * ``max_age_s`` — any examined run whose ``ingested_at`` is more
          than this many seconds before ``now`` is deleted (quarantined
          runs age out too: their bytes are the least worth keeping);
        * ``max_runs`` — for each workload, only the newest ``max_runs``
          *healthy* runs are kept.  Quarantined runs neither occupy nor
          consume retention slots under this rule.

        ``labels`` narrows the sweep to matching runs; runs carrying any
        label *key* in ``protect_labels`` (e.g. ``("pinned",)``) are never
        pruned.  Each deletion routes through :meth:`remove`, so the
        catalog rewrite and index removal happen under the catalog lock
        exactly as a manual removal would.  With neither rule set this is
        a no-op that reports every examined run as kept.
        """
        now = time.time() if now is None else float(now)
        report = PruneReport()
        victims: Dict[str, str] = {}
        eligible: List[RunRecord] = []
        for record in self._ordered_records():
            if labels and not record.matches(labels=labels):
                continue
            report.examined += 1
            if any(key in record.labels for key in protect_labels):
                report.protected.append(record.run_id)
                continue
            eligible.append(record)
        if max_age_s is not None:
            for record in eligible:
                age = now - record.ingested_at
                if age > max_age_s:
                    victims[record.run_id] = (
                        f"age {age:.0f}s exceeds max_age_s={max_age_s:g}")
        if max_runs is not None:
            by_workload: Dict[str, List[RunRecord]] = {}
            for record in eligible:
                if record.run_id in victims or not record.healthy:
                    continue
                by_workload.setdefault(record.workload, []).append(record)
            for workload, group in by_workload.items():
                # _ordered_records is oldest-first, so the overflow to
                # drop is the group's head.
                for record in group[:max(0, len(group) - max_runs)]:
                    victims[record.run_id] = (
                        f"workload {workload!r} exceeds max_runs={max_runs}")
        with TELEMETRY.span("fleet.store.prune", runs=len(victims)):
            for run_id, reason in victims.items():
                self.remove(run_id)
                report.pruned.append((run_id, reason))
        report.kept = report.examined - len(report.pruned) \
            - len(report.protected)
        TELEMETRY.count("fleet.pruned_runs", len(report.pruned))
        return report

    # -- the fleet query index ---------------------------------------------------------

    @property
    def fleet_index(self) -> FleetIndex:
        """This store's on-disk query index (see ``repro.fleet.index``)."""
        if self._index is None:
            self._index = FleetIndex(self.root, self.lock_path)
        return self._index

    def reindex(self, run_ids: Optional[List[str]] = None) -> List[str]:
        """(Re)build per-run index summaries; returns the run ids rebuilt.

        Backfills stores that predate the index (or whose index rotted):
        each healthy run's sealed profile is opened once and its per-name
        Welford states recomputed — exactly the pass ingest performs — then
        written under the catalog lock.  Quarantined runs get their summary
        *invalidated* instead (a quarantined run must not serve indexed
        answers); a run whose profile cannot be opened is skipped, not
        quarantined — ``scrub`` is the tool that moves health states.
        """
        records = ([self.get(run_id) for run_id in run_ids]
                   if run_ids is not None else self._ordered_records())
        rebuilt: List[str] = []
        for record in records:
            if not record.healthy:
                self.fleet_index.remove(record.run_id)
                continue
            try:
                with backend_for(FORMAT_BINARY_V1).open(
                        os.path.join(self.root, record.path)) as view:
                    states = {metric: view.column_name_states(metric)
                              for metric in view.metric_names()}
            except (ProfileFormatError, OSError):
                continue
            self.fleet_index.write_summary(record, states)
            rebuilt.append(record.run_id)
        return rebuilt

    # -- durability: quarantine and scrub ---------------------------------------------

    def quarantine(self, run_id: str, reason: str) -> RunRecord:
        """Mark a run corrupt/unreadable: kept in the catalog, excluded from
        queries (``find``/``latest``/aggregators skip it) until a scrub
        verifies it clean again or :meth:`restore` is called explicitly.
        The run's index summary is invalidated with it — a quarantined run
        must not keep serving indexed fleet answers."""
        record = self.get(run_id)
        record.status = STATUS_QUARANTINED
        record.quarantine_reason = str(reason)
        record.quarantined_at = time.time()
        self._save_catalog()
        self.fleet_index.remove(record.run_id)
        if TELEMETRY.enabled:
            TELEMETRY.count("fleet.quarantines")
        return record

    def restore(self, run_id: str) -> RunRecord:
        """Lift a run's quarantine without re-verifying (prefer scrub).

        The run's index summary is rebuilt from its profile; if the bytes
        are genuinely unreadable the rebuild is skipped and queries fall
        back to the lazy view (which is where the rot will resurface)."""
        record = self.get(run_id)
        record.status = STATUS_OK
        record.quarantine_reason = ""
        record.quarantined_at = 0.0
        self._save_catalog()
        self.reindex([record.run_id])
        return record

    def verify_run(self, run_id: str) -> Optional[str]:
        """Why the run's stored profile is bad, or None when it verifies.

        Three layers of checking, cheapest-to-deepest: the file exists; its
        SHA-256 matches the content address the catalog recorded (any byte
        of rot anywhere fails this, checksummed or not); and every sealed
        block passes ``LazyProfileView.verify_blocks`` — which is what names
        the precise block and offset when the digest check fails.
        """
        record = self.get(run_id)
        path = os.path.join(self.root, record.path)
        if not os.path.isfile(path):
            return f"profile file {record.path!r} is missing from the store"
        block_problems: List[str] = []
        try:
            with backend_for(FORMAT_BINARY_V1).open(path) as view:
                block_problems = view.verify_blocks()
        except (ProfileFormatError, OSError) as error:
            return str(error)
        if block_problems:
            return "; ".join(block_problems)
        if record.digest:
            digest = self._digest_file(path)
            if digest != record.digest:
                return (f"profile file {record.path!r} digest "
                        f"{digest[:RUN_ID_LENGTH]}... does not match the "
                        f"content address {record.digest[:RUN_ID_LENGTH]}... "
                        f"recorded at ingest (bytes changed outside any "
                        f"checksummed block)")
        return None

    def scrub(self, run_ids: Optional[List[str]] = None) -> ScrubReport:
        """Verify (or re-verify) stored profiles and update quarantine state.

        Healthy runs that fail verification are quarantined with the precise
        reason; quarantined runs that now verify clean — the operator
        restored the file from a replica, say — are restored.  One catalog
        write at the end, regardless of how many states changed.  The query
        index follows the health states: newly quarantined runs lose their
        summaries, and every verified-healthy run missing a valid summary
        (a pre-index store, a restored run, a rotten index file) gets one
        rebuilt — scrub doubles as the index backfill pass.
        """
        records = ([self.get(run_id) for run_id in run_ids]
                   if run_ids is not None else self._ordered_records())
        report = ScrubReport()
        changed = False
        with TELEMETRY.span("fleet.store.scrub", runs=len(records)):
            for record in records:
                report.checked += 1
                problem = self.verify_run(record.run_id)
                if problem is None:
                    if not record.healthy:
                        record.status = STATUS_OK
                        record.quarantine_reason = ""
                        record.quarantined_at = 0.0
                        report.restored.append(record.run_id)
                        changed = True
                    report.healthy.append(record.run_id)
                elif record.healthy:
                    record.status = STATUS_QUARANTINED
                    record.quarantine_reason = problem
                    record.quarantined_at = time.time()
                    report.quarantined.append((record.run_id, problem))
                    changed = True
                    if TELEMETRY.enabled:
                        TELEMETRY.count("fleet.quarantines")
                else:
                    if record.quarantine_reason != problem:
                        record.quarantine_reason = problem
                        changed = True
                    report.still_quarantined.append(record.run_id)
            if changed:
                self._save_catalog()
            for record in records:
                if not record.healthy:
                    self.fleet_index.remove(record.run_id)
            stale = [record.run_id for record in records
                     if record.healthy
                     and not self.fleet_index.is_current(record)]
            if stale:
                self.reindex(stale)
            if TELEMETRY.enabled:
                TELEMETRY.count("fleet.scrub_checked", report.checked)
                TELEMETRY.count("fleet.scrub_quarantined",
                                len(report.quarantined))
                TELEMETRY.count("fleet.scrub_restored", len(report.restored))
        return report

    # -- fleet queries ----------------------------------------------------------------------------

    def aggregator(self, run_ids: Optional[List[str]] = None, **filters):
        """A :class:`~repro.fleet.aggregate.FleetAggregator` over this store.

        ``run_ids`` selects explicit runs; otherwise ``filters`` (workload /
        device / config_hash / labels) select from the catalog.
        ``use_index=False`` and ``max_workers=N`` pass through to
        :meth:`~repro.fleet.aggregate.FleetAggregator.from_store`.
        """
        from .aggregate import FleetAggregator

        return FleetAggregator.from_store(self, run_ids=run_ids, **filters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProfileStore({self.root!r}, runs={len(self._records)})"
