"""Differential profiles: align two runs' CCTs and rank what changed.

A :class:`DifferentialProfile` aligns a *baseline* and a *candidate* profile
on their calling contexts — the path of ``Frame.identity()`` keys from the
root, the same collapsing rule the CCT itself inserts by — and reports, per
aligned context, how the chosen metric moved.  Contexts present on only one
side become *new* or *vanished* entries; name-level rollups
(:meth:`DifferentialProfile.kernel_deltas`) answer the coarser "which kernel
got slower, regardless of caller" question the bottom-up view asks.

Because every CCT node carries full Welford state (count, mean, M2), a delta
is more than a subtraction: each changed context gets a Welch z-score of the
per-observation means, so a context whose mean moved far outside the noise of
both runs ranks above one whose totals drifted within it.  Deterministic
changes (both variances zero, or a context appearing from nothing) saturate
at :data:`Z_CAP` — they are as significant as a finite sample can show.

Populations diff the same way: :meth:`DifferentialProfile.between_populations`
first unions each run set with :func:`merge_population` (the shard-merge
primitive ``CallingContextTree.merge_from`` + parallel Welford merges), so
"this week's fleet vs last week's fleet" is one aligned comparison, not a
quadratic matrix of run pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import metrics as M
from ..core.cct import CallingContextTree, CCTNode
from ..dlmonitor.callpath import FrameKind

#: Significance assigned to deterministic changes (zero variance on both
#: sides, or a context appearing/vanishing outright): a finite sample cannot
#: show more evidence than "always was X, now always is Y".
Z_CAP = 1e6

#: Cap on the significance multiplier inside :attr:`ContextDelta.score`.
#: Evidence scales a delta's rank by at most one order of magnitude
#: (multiplier in [1, 10]), so a statistically unambiguous but negligible
#: change can never outrank a regression 10x its size.
SCORE_SIGNIFICANCE_CAP = 9.0

STATUS_UNCHANGED = "unchanged"
STATUS_CHANGED = "changed"
STATUS_NEW = "new"
STATUS_VANISHED = "vanished"


def _welch_z(status: str, delta_mean: float,
             baseline_count: int, baseline_variance: float,
             candidate_count: int, candidate_variance: float) -> float:
    """Signed Welch z-statistic shared by context- and name-level deltas.

    Zero when nothing moved; ±:data:`Z_CAP` for deterministic changes —
    both sides variance-free but different, or a context/name that exists
    on one side only.
    """
    if status == STATUS_NEW:
        return Z_CAP
    if status == STATUS_VANISHED:
        return -Z_CAP
    if delta_mean == 0.0:
        return 0.0
    pooled = 0.0
    if baseline_count:
        pooled += baseline_variance / baseline_count
    if candidate_count:
        pooled += candidate_variance / candidate_count
    if pooled <= 0.0:
        return Z_CAP if delta_mean > 0 else -Z_CAP
    return max(-Z_CAP, min(Z_CAP, delta_mean / math.sqrt(pooled)))


def resolve_tree(source) -> CallingContextTree:
    """A single queryable :class:`CallingContextTree` for any profile shape.

    Accepts a plain tree, a :class:`ShardedCallingContextTree`, a
    ``LazyProfileView`` (hydrated and merged on demand) or a
    ``ProfileDatabase`` wrapping any of those.
    """
    tree = getattr(source, "tree", source)  # ProfileDatabase → its tree
    merged = getattr(tree, "merged", None)
    if callable(merged):  # sharded tree or lazy view: the union tree
        return merged()
    return tree


def merge_population(sources: Iterable, program_name: str = "population") -> CallingContextTree:
    """Union several profiles into one tree (the fleet-merge primitive).

    Each source is resolved with :func:`resolve_tree` and folded in with
    ``CallingContextTree.merge_from`` — structural union on
    ``Frame.identity()`` plus parallel Welford metric merges — in iteration
    order, exactly the sequence a single sharded profile holding every
    source's shards would replay, so population merges are bit-for-bit
    equivalent to having collected the observations into one profile.
    """
    combined = CallingContextTree(program_name)
    for source in sources:
        combined.merge_from(resolve_tree(source))
    return combined


def _index_by_path(tree: CallingContextTree) -> Dict[Tuple, CCTNode]:
    """``identity-path → node`` for every non-root node, registration order.

    Parents precede children in the registry, so each node's key extends an
    already-computed parent key — one linear pass, no per-node root walks.
    """
    keys: Dict[int, Tuple] = {id(tree.root): ()}
    index: Dict[Tuple, CCTNode] = {}
    for node in tree.all_nodes():
        if node.parent is None:
            continue
        key = keys[id(node.parent)] + (node.frame.identity(),)
        keys[id(node)] = key
        index[key] = node
    return index


@dataclass
class ContextDelta:
    """How one calling context's metric moved between baseline and candidate."""

    #: Human-readable frame labels from just below the root to this context.
    path: Tuple[str, ...]
    name: str
    kind: str
    metric: str
    status: str
    baseline_count: int = 0
    baseline_sum: float = 0.0
    baseline_mean: float = 0.0
    baseline_variance: float = 0.0
    candidate_count: int = 0
    candidate_sum: float = 0.0
    candidate_mean: float = 0.0
    candidate_variance: float = 0.0
    #: The candidate tree's node (None for vanished contexts) — what the
    #: regression analysis attaches its Issues to.
    node: Optional[CCTNode] = None

    @property
    def delta_sum(self) -> float:
        return self.candidate_sum - self.baseline_sum

    @property
    def delta_mean(self) -> float:
        return self.candidate_mean - self.baseline_mean

    @property
    def z_score(self) -> float:
        """Welch z-statistic of the per-observation means (signed).

        Zero when nothing moved; ±:data:`Z_CAP` for deterministic changes —
        both sides variance-free but different, or a context that exists on
        one side only.
        """
        return _welch_z(self.status, self.delta_mean,
                        self.baseline_count, self.baseline_variance,
                        self.candidate_count, self.candidate_variance)

    @property
    def significance(self) -> float:
        return abs(self.z_score)

    @property
    def score(self) -> float:
        """Ranking weight: metric movement scaled by statistical evidence.

        ``delta_sum * (1 + min(significance, SCORE_SIGNIFICANCE_CAP))`` —
        evidence contributes at most one order of magnitude, so a large
        regression outranks anything under a tenth of its size regardless of
        z, while between comparable deltas the one that moved far outside
        both runs' noise wins.  Signed: positive scores are regressions,
        negative ones improvements.
        """
        return self.delta_sum * (
            1.0 + min(self.significance, SCORE_SIGNIFICANCE_CAP))

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": list(self.path),
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "status": self.status,
            "baseline": {"count": self.baseline_count, "sum": self.baseline_sum,
                         "mean": self.baseline_mean},
            "candidate": {"count": self.candidate_count, "sum": self.candidate_sum,
                          "mean": self.candidate_mean},
            "delta_sum": self.delta_sum,
            "delta_mean": self.delta_mean,
            "z_score": self.z_score,
        }

    def __str__(self) -> str:
        return (f"[{self.status}] {self.name}: {self.baseline_sum:.6g} → "
                f"{self.candidate_sum:.6g} ({self.delta_sum:+.6g} {self.metric})")


class DifferentialProfile:
    """Aligned comparison of two profiles (or two merged populations)."""

    def __init__(self, baseline, candidate,
                 metric: str = M.METRIC_GPU_TIME) -> None:
        self.metric = metric
        self.baseline_tree = resolve_tree(baseline)
        self.candidate_tree = resolve_tree(candidate)
        self._baseline_index = _index_by_path(self.baseline_tree)
        self._candidate_index = _index_by_path(self.candidate_tree)
        self._contexts = self._align()

    @classmethod
    def between_populations(cls, baselines: Iterable, candidates: Iterable,
                            metric: str = M.METRIC_GPU_TIME) -> "DifferentialProfile":
        """Diff two run populations: each side is fleet-merged first."""
        return cls(merge_population(baselines, "baseline"),
                   merge_population(candidates, "candidate"), metric=metric)

    # -- alignment ------------------------------------------------------------------

    @staticmethod
    def _stats(node: Optional[CCTNode], metric: str) -> Tuple[int, float, float, float]:
        if node is None:
            return 0, 0.0, 0.0, 0.0
        aggregate = node.exclusive.get(metric)
        if aggregate is None or aggregate.count == 0:
            return 0, 0.0, 0.0, 0.0
        return aggregate.count, aggregate.total, aggregate.mean, aggregate.variance

    def _align(self) -> List[ContextDelta]:
        metric = self.metric
        contexts: List[ContextDelta] = []
        base_index = self._baseline_index
        for key, cnode in self._candidate_index.items():
            bnode = base_index.get(key)
            b_count, b_sum, b_mean, b_var = self._stats(bnode, metric)
            c_count, c_sum, c_mean, c_var = self._stats(cnode, metric)
            if b_count == 0 and c_count == 0:
                continue  # context never observed this metric on either side
            if bnode is None:
                status = STATUS_NEW
            elif (b_count, b_sum, b_mean, b_var) == (c_count, c_sum, c_mean, c_var):
                status = STATUS_UNCHANGED
            else:
                status = STATUS_CHANGED
            contexts.append(ContextDelta(
                path=tuple(n.frame.label() for n in cnode.path_from_root()[1:]),
                name=cnode.frame.label(), kind=cnode.kind.value, metric=metric,
                status=status,
                baseline_count=b_count, baseline_sum=b_sum,
                baseline_mean=b_mean, baseline_variance=b_var,
                candidate_count=c_count, candidate_sum=c_sum,
                candidate_mean=c_mean, candidate_variance=c_var,
                node=cnode))
        candidate_keys = self._candidate_index
        for key, bnode in base_index.items():
            if key in candidate_keys:
                continue
            b_count, b_sum, b_mean, b_var = self._stats(bnode, metric)
            if b_count == 0:
                continue
            contexts.append(ContextDelta(
                path=tuple(n.frame.label() for n in bnode.path_from_root()[1:]),
                name=bnode.frame.label(), kind=bnode.kind.value, metric=metric,
                status=STATUS_VANISHED,
                baseline_count=b_count, baseline_sum=b_sum,
                baseline_mean=b_mean, baseline_variance=b_var,
                node=None))
        return contexts

    # -- context-level views ------------------------------------------------------------

    def contexts(self) -> List[ContextDelta]:
        """Every aligned context that observed the metric on either side."""
        return list(self._contexts)

    @property
    def deltas(self) -> List[ContextDelta]:
        """Contexts whose metric actually moved (new/vanished included)."""
        return [delta for delta in self._contexts
                if delta.status != STATUS_UNCHANGED]

    @property
    def new_contexts(self) -> List[ContextDelta]:
        return [d for d in self._contexts if d.status == STATUS_NEW]

    @property
    def vanished_contexts(self) -> List[ContextDelta]:
        return [d for d in self._contexts if d.status == STATUS_VANISHED]

    def regressions(self, min_delta: float = 0.0,
                    min_z: float = 0.0) -> List[ContextDelta]:
        """Contexts that got *more* expensive, most significant first.

        ``min_delta`` gates the absolute metric increase, ``min_z`` the Welch
        significance; survivors are ranked by :attr:`ContextDelta.score`
        (delta weighted by significance).  New contexts count — time appearing
        where none was spent is a regression of the candidate run.
        """
        found = [d for d in self.deltas
                 if d.delta_sum > min_delta and d.significance >= min_z
                 and d.status != STATUS_VANISHED]
        found.sort(key=lambda d: -d.score)
        return found

    def improvements(self, min_delta: float = 0.0) -> List[ContextDelta]:
        """Contexts that got cheaper (vanished ones included), biggest first."""
        found = [d for d in self.deltas if d.delta_sum < -min_delta]
        found.sort(key=lambda d: d.score)
        return found

    # -- structural (metric-independent) views ----------------------------------------------

    def new_call_paths(self) -> List[Tuple[str, ...]]:
        """Label paths of contexts present only in the candidate tree."""
        base = self._baseline_index
        return [tuple(n.frame.label() for n in node.path_from_root()[1:])
                for key, node in self._candidate_index.items() if key not in base]

    def vanished_call_paths(self) -> List[Tuple[str, ...]]:
        """Label paths of contexts present only in the baseline tree."""
        candidate = self._candidate_index
        return [tuple(n.frame.label() for n in node.path_from_root()[1:])
                for key, node in self._baseline_index.items()
                if key not in candidate]

    # -- name-level (bottom-up) views ---------------------------------------------------------

    def _name_totals(self, tree: CallingContextTree,
                     kind: Optional[FrameKind]) -> Dict[str, float]:
        return tree.aggregate_by_name(kind=kind, metric=self.metric)

    def kernel_deltas(self, kind: Optional[FrameKind] = FrameKind.GPU_KERNEL) -> List[Dict[str, object]]:
        """Name-level rollup: per kernel (or any kind), summed over contexts."""
        base = self._name_totals(self.baseline_tree, kind)
        cand = self._name_totals(self.candidate_tree, kind)
        rows: List[Dict[str, object]] = []
        for name in dict.fromkeys((*base, *cand)):
            before, after = base.get(name), cand.get(name)
            status = (STATUS_NEW if before is None else
                      STATUS_VANISHED if after is None else
                      STATUS_UNCHANGED if before == after else STATUS_CHANGED)
            rows.append({"name": name, "baseline": before or 0.0,
                         "candidate": after or 0.0,
                         "delta": (after or 0.0) - (before or 0.0),
                         "status": status})
        rows.sort(key=lambda row: -abs(row["delta"]))
        return rows

    @property
    def new_kernels(self) -> List[str]:
        base = self._name_totals(self.baseline_tree, FrameKind.GPU_KERNEL)
        cand = self._name_totals(self.candidate_tree, FrameKind.GPU_KERNEL)
        return [name for name in cand if name not in base]

    @property
    def vanished_kernels(self) -> List[str]:
        base = self._name_totals(self.baseline_tree, FrameKind.GPU_KERNEL)
        cand = self._name_totals(self.candidate_tree, FrameKind.GPU_KERNEL)
        return [name for name in base if name not in cand]

    # -- whole-profile summaries ------------------------------------------------------------

    @property
    def baseline_total(self) -> float:
        return self.baseline_tree.total_metric(self.metric)

    @property
    def candidate_total(self) -> float:
        return self.candidate_tree.total_metric(self.metric)

    @property
    def total_delta(self) -> float:
        return self.candidate_total - self.baseline_total

    @property
    def max_abs_delta(self) -> float:
        """Largest per-context movement (the GUI's colour-scale anchor)."""
        return max((abs(d.delta_sum) for d in self._contexts), default=0.0)

    @property
    def is_identical(self) -> bool:
        """True when every aligned context is unchanged and none is one-sided.

        A profile diffed against itself (or against a lossless reload of
        itself) is identical: the acceptance contract of the self-diff case.
        """
        return (all(d.status == STATUS_UNCHANGED for d in self._contexts)
                and not self.new_call_paths() and not self.vanished_call_paths())

    def summary(self) -> Dict[str, object]:
        counts = {STATUS_UNCHANGED: 0, STATUS_CHANGED: 0, STATUS_NEW: 0,
                  STATUS_VANISHED: 0}
        for delta in self._contexts:
            counts[delta.status] += 1
        return {
            "metric": self.metric,
            "baseline_total": self.baseline_total,
            "candidate_total": self.candidate_total,
            "total_delta": self.total_delta,
            "contexts": counts,
            "new_kernels": self.new_kernels,
            "vanished_kernels": self.vanished_kernels,
            "top_regressions": [d.as_dict() for d in self.regressions()[:5]],
        }

    def to_dict(self) -> Dict[str, object]:
        data = self.summary()
        data["deltas"] = [d.as_dict() for d in self.deltas]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DifferentialProfile(metric={self.metric!r}, "
                f"contexts={len(self._contexts)}, "
                f"total_delta={self.total_delta:+.6g})")


# -- name-level population drift (index-served) --------------------------------------


@dataclass
class NameDelta:
    """How one frame name's metric moved between two run populations.

    The name-level analogue of :class:`ContextDelta`: full Welford state on
    both sides, so the delta carries a Welch z-score — but computed from
    per-name rollups rather than aligned contexts, which is what lets
    :func:`name_drift` answer from fleet-index rows without building trees.
    """

    name: str
    metric: str
    status: str
    baseline_count: int = 0
    baseline_sum: float = 0.0
    baseline_mean: float = 0.0
    baseline_variance: float = 0.0
    candidate_count: int = 0
    candidate_sum: float = 0.0
    candidate_mean: float = 0.0
    candidate_variance: float = 0.0

    @property
    def delta_sum(self) -> float:
        return self.candidate_sum - self.baseline_sum

    @property
    def delta_mean(self) -> float:
        return self.candidate_mean - self.baseline_mean

    @property
    def z_score(self) -> float:
        return _welch_z(self.status, self.delta_mean,
                        self.baseline_count, self.baseline_variance,
                        self.candidate_count, self.candidate_variance)

    @property
    def significance(self) -> float:
        return abs(self.z_score)

    @property
    def score(self) -> float:
        """Same ranking rule as :attr:`ContextDelta.score` (signed)."""
        return self.delta_sum * (
            1.0 + min(self.significance, SCORE_SIGNIFICANCE_CAP))

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metric": self.metric,
            "status": self.status,
            "baseline": {"count": self.baseline_count,
                         "sum": self.baseline_sum, "mean": self.baseline_mean},
            "candidate": {"count": self.candidate_count,
                          "sum": self.candidate_sum,
                          "mean": self.candidate_mean},
            "delta_sum": self.delta_sum,
            "delta_mean": self.delta_mean,
            "z_score": self.z_score,
        }

    def __str__(self) -> str:
        return (f"[{self.status}] {self.name}: {self.baseline_sum:.6g} → "
                f"{self.candidate_sum:.6g} ({self.delta_sum:+.6g} {self.metric})")


def _name_states(population, kind: Optional[FrameKind], metric: str) -> Dict[str, Tuple]:
    states = getattr(population, "name_states", None)
    if callable(states):  # FleetAggregator (or view): index rows / column sums
        return states(kind=kind, metric=metric)
    # Tree fallback: fold exclusive Welford states by label in registration
    # order with the same merge recurrence the column/index paths use.
    from ..core.storage import accumulate_name_state

    tree = resolve_tree(population)
    totals: Dict[str, Tuple] = {}
    for node in tree.all_nodes():
        if kind is not None and node.kind != kind:
            continue
        aggregate = node.exclusive.get(metric)
        if aggregate is None or aggregate.count == 0:
            continue
        accumulate_name_state(totals, node.frame.label(), *aggregate.state())
    return totals


def name_drift(baseline, candidate, kind: Optional[FrameKind] = None,
               metric: str = M.METRIC_GPU_TIME) -> List[NameDelta]:
    """Name-level drift between two populations, biggest movers first.

    ``baseline``/``candidate`` are typically :class:`FleetAggregator`\\ s —
    over a fully indexed store this scan reads *only* index rows (no profile
    opened on either side) — but any tree-like also works.  Each side's
    per-name Welford states fold across its runs first, then names align:
    new / vanished / changed / unchanged, each carrying a Welch z of the
    per-observation means.  Ranked by ``-abs(score)`` so the largest
    evidence-weighted movement — in either direction — leads.
    """
    base = _name_states(baseline, kind, metric)
    cand = _name_states(candidate, kind, metric)
    deltas: List[NameDelta] = []
    for name in dict.fromkeys((*base, *cand)):
        b, c = base.get(name), cand.get(name)
        b_count, b_sum, b_mean, b_m2 = ((b[0], b[1], b[4], b[5]) if b
                                        else (0, 0.0, 0.0, 0.0))
        c_count, c_sum, c_mean, c_m2 = ((c[0], c[1], c[4], c[5]) if c
                                        else (0, 0.0, 0.0, 0.0))
        status = (STATUS_NEW if b is None else
                  STATUS_VANISHED if c is None else
                  STATUS_UNCHANGED if (b_count, b_sum, b_mean, b_m2) ==
                  (c_count, c_sum, c_mean, c_m2) else STATUS_CHANGED)
        deltas.append(NameDelta(
            name=name, metric=metric, status=status,
            baseline_count=b_count, baseline_sum=b_sum, baseline_mean=b_mean,
            baseline_variance=(b_m2 / b_count if b_count else 0.0),
            candidate_count=c_count, candidate_sum=c_sum,
            candidate_mean=c_mean,
            candidate_variance=(c_m2 / c_count if c_count else 0.0)))
    deltas.sort(key=lambda delta: -abs(delta.score))
    return deltas
