"""``python -m repro.fleet.watch`` — run a :class:`FleetWatcher` daemon.

Tails a directory of streaming checkpoint files, ingests completed runs
into a profile store, applies retention, runs the standing scrub/drift
jobs, appends telemetry snapshots to a health time-series and keeps a
self-refreshing HTML dashboard current.  ``--max-ticks``/``--deadline-s``
bound the loop for smoke tests and CI; without either it polls until
interrupted.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..obs import TELEMETRY, HealthTimeSeries
from .store import ProfileStore
from .watcher import HEALTH_NAME, FleetWatcher, RetentionPolicy


def _parse_labels(pairs: List[str]) -> dict:
    labels = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"label {pair!r} is not KEY=VALUE")
        labels[key] = value
    return labels


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.watch",
        description="Watch a directory of streaming profiles: monitor "
                    "live runs, ingest completed ones, keep a health "
                    "time-series and dashboard current.")
    parser.add_argument("watch_dir", help="directory of *.cctb stream files")
    parser.add_argument("--store", required=True,
                        help="profile store root (created if missing)")
    parser.add_argument("--poll-interval-s", type=float, default=1.0)
    parser.add_argument("--settle-s", type=float, default=None,
                        help="ingest a run after this many seconds without "
                             "a new seal (default: completion markers only)")
    parser.add_argument("--max-age-s", type=float, default=None,
                        help="retention: prune ingested runs older than this")
    parser.add_argument("--max-runs", type=int, default=None,
                        help="retention: keep only the newest N healthy runs "
                             "per workload")
    parser.add_argument("--protect-label", action="append", default=[],
                        metavar="KEY",
                        help="never prune runs carrying this label key "
                             "(repeatable)")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="label to stamp on every ingested run "
                             "(repeatable)")
    parser.add_argument("--scrub-every-s", type=float, default=300.0)
    parser.add_argument("--drift-every-s", type=float, default=120.0)
    parser.add_argument("--drift-window", type=int, default=8)
    parser.add_argument("--issue-log", default=None,
                        help="issue log path (default <store>/issues.jsonl)")
    parser.add_argument("--health", default=None,
                        help="health time-series path "
                             "(default <store>/health.jsonl)")
    parser.add_argument("--snapshot-every-s", type=float, default=30.0)
    parser.add_argument("--dashboard", default=None,
                        help="write a self-refreshing HTML dashboard here")
    parser.add_argument("--dashboard-every-s", type=float, default=5.0)
    parser.add_argument("--remove-ingested", action="store_true",
                        help="delete stream files (and markers) once "
                             "ingested")
    parser.add_argument("--max-ticks", type=int, default=None,
                        help="stop after N polls (smoke tests / CI)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="stop after this much wall time")
    arguments = parser.parse_args(argv)

    try:
        labels = _parse_labels(arguments.label)
    except ValueError as error:
        print(f"repro.fleet.watch: {error}", file=sys.stderr)
        return 2

    TELEMETRY.enable()
    store = ProfileStore(arguments.store)
    health_path = arguments.health
    if health_path is None:
        health_path = os.path.join(store.root, HEALTH_NAME)
    watcher = FleetWatcher(
        arguments.watch_dir, store,
        poll_interval_s=arguments.poll_interval_s,
        settle_s=arguments.settle_s,
        retention=RetentionPolicy(
            max_age_s=arguments.max_age_s,
            max_runs=arguments.max_runs,
            protect_labels=tuple(arguments.protect_label)),
        scrub_every_s=arguments.scrub_every_s,
        drift_every_s=arguments.drift_every_s,
        drift_window=arguments.drift_window,
        issue_log_path=arguments.issue_log,
        health=HealthTimeSeries(health_path),
        snapshot_every_s=arguments.snapshot_every_s,
        dashboard_path=arguments.dashboard,
        dashboard_every_s=arguments.dashboard_every_s,
        labels=labels,
        remove_ingested=arguments.remove_ingested)
    try:
        with watcher:
            ticks = watcher.run(max_ticks=arguments.max_ticks,
                                deadline_s=arguments.deadline_s)
    except KeyboardInterrupt:
        print("repro.fleet.watch: interrupted", file=sys.stderr)
        return 130
    print(f"repro.fleet.watch: {ticks} tick(s), "
          f"{len(store)} run(s) in store, "
          f"{len(watcher.issue_log)} issue(s) filed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
