"""Fleet aggregation: multi-run profile store, cross-run merge, differentials.

This package scales the single-run profiler into a fleet tool: a
content-addressed :class:`ProfileStore` catalogs many runs' sealed profiles,
a :class:`FleetAggregator` answers fleet-wide queries from lazy column sums
(or materializes the fleet CCT when structure is needed), and a
:class:`DifferentialProfile` aligns two runs — or two run populations — on
calling contexts to rank regressions.  The analyzer's ``RegressionAnalysis``
and the experiment runner's ``store_path``/``baseline`` options build on
these; ``docs/FLEET.md`` documents the store layout and the differential
semantics.
"""

from .aggregate import DegradedRun, FleetAggregator
from .differential import (
    STATUS_CHANGED,
    STATUS_NEW,
    STATUS_UNCHANGED,
    STATUS_VANISHED,
    Z_CAP,
    ContextDelta,
    DifferentialProfile,
    NameDelta,
    merge_population,
    name_drift,
    resolve_tree,
)
from .index import INDEX_VERSION, FleetIndex, RunSummary
from .store import (
    CATALOG_VERSION,
    LATEST_ALIASES,
    STATUS_OK,
    STATUS_QUARANTINED,
    CatalogLockTimeout,
    ProfileStore,
    PruneReport,
    RunRecord,
    ScrubReport,
    catalog_lock_stats,
    config_hash,
    reset_catalog_lock_stats,
)
from .watcher import (
    FleetWatcher,
    RetentionPolicy,
    WatchedRun,
    WatcherTick,
)

__all__ = [
    "ProfileStore",
    "RunRecord",
    "config_hash",
    "CATALOG_VERSION",
    "LATEST_ALIASES",
    "FleetAggregator",
    "DegradedRun",
    "ScrubReport",
    "PruneReport",
    "FleetWatcher",
    "RetentionPolicy",
    "WatchedRun",
    "WatcherTick",
    "CatalogLockTimeout",
    "catalog_lock_stats",
    "reset_catalog_lock_stats",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "DifferentialProfile",
    "ContextDelta",
    "NameDelta",
    "name_drift",
    "merge_population",
    "resolve_tree",
    "FleetIndex",
    "RunSummary",
    "INDEX_VERSION",
    "Z_CAP",
    "STATUS_UNCHANGED",
    "STATUS_CHANGED",
    "STATUS_NEW",
    "STATUS_VANISHED",
]
