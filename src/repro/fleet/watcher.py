"""Live fleet watcher: continuous run monitoring over a checkpoint directory.

A :class:`FleetWatcher` turns the passive pieces built so far — streamed
checkpoint files, the content-addressed :class:`~repro.fleet.store.ProfileStore`,
the index-served :class:`~repro.fleet.aggregate.FleetAggregator`, the
analyzer's :class:`~repro.analyzer.regression.RegressionAnalysis` and the
``repro.obs`` telemetry registry — into a standing daemon:

* **tail live runs**: every poll it scans ``watch_dir`` for ``*.cctb``
  streams, attaches them with :meth:`LazyProfileView.attach` and follows new
  seals via :meth:`refresh` (which survives reseal *and* compaction, and whose
  no-change fast path makes an idle poll a ``stat`` plus a tail read).  A
  refresh that fails mid-rewrite degrades that run to its last sealed prefix —
  the old view keeps serving — and retries next tick; it never crashes the
  watcher;
* **ingest on completion**: a run is complete when its writer left a
  completion marker (``StreamingProfileWriter.close(mark_complete=True)``) or
  when no new seal has landed for ``settle_s`` seconds.  Complete runs are
  ingested into the store (content-addressed, under the catalog lock) and the
  configured :class:`RetentionPolicy` is applied via
  :meth:`ProfileStore.prune`;
* **standing jobs**: a periodic :meth:`ProfileStore.scrub` sweep files one
  issue per newly-rotten run, and a rolling-window population-drift job diffs
  each workload's older ingested runs against its newer ones —
  :func:`name_drift` over index-served aggregators as the cheap gate, then
  :func:`merge_population` + :class:`RegressionAnalysis` for ranked issues.
  Issues land in a crash-safe JSONL issue log (same append discipline as the
  health time-series);
* **health time-series + dashboard**: periodic ``TELEMETRY`` snapshots are
  appended to a :class:`~repro.obs.timeseries.HealthTimeSeries`, and a
  self-refreshing HTML dashboard (``repro.gui.dashboard``) is re-rendered
  from the store's catalog/index, the time-series and the live views.

Liveness is visible from the outside through always-current gauges:
``watcher.runs_live``, ``watcher.runs_stalled``, ``watcher.last_seal_age_s``
and per-run ``watcher.run.<name>.nodes`` / ``watcher.run.<name>.<metric>``
totals.  ``python -m repro.fleet.watch`` wraps all of this in a CLI.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..analyzer.durability import degradation_issues, quarantine_issues
from ..analyzer.issues import Issue, IssueCollector, Severity
from ..core import metrics as M
from ..core.storage import LazyProfileView, ProfileFormatError
from ..core.streaming import DONE_SUFFIX, is_marked_complete
from ..obs import TELEMETRY, HealthTimeSeries
from .aggregate import FleetAggregator
from .differential import STATUS_UNCHANGED, merge_population, name_drift
from .store import PROFILE_SUFFIX, ProfileStore, PruneReport

#: Default name (inside the store root) of the persisted issue log.
ISSUE_LOG_NAME = "issues.jsonl"
#: Default name (inside the store root) of the health time-series.
HEALTH_NAME = "health.jsonl"


@dataclass
class RetentionPolicy:
    """How :meth:`FleetWatcher` prunes the store after each ingest.

    Mirrors :meth:`ProfileStore.prune`: runs older than ``max_age_s`` go, and
    each workload keeps only its newest ``max_runs`` healthy runs.  Runs
    carrying any label key in ``protect_labels`` are never pruned.
    """

    max_age_s: Optional[float] = None
    max_runs: Optional[int] = None
    protect_labels: Tuple[str, ...] = ()

    @property
    def enabled(self) -> bool:
        return self.max_age_s is not None or self.max_runs is not None

    def apply(self, store: ProfileStore,
              now: Optional[float] = None) -> PruneReport:
        return store.prune(max_age_s=self.max_age_s, max_runs=self.max_runs,
                           protect_labels=self.protect_labels, now=now)


@dataclass
class WatchedRun:
    """One live run the watcher is tailing."""

    path: str
    view: Optional[LazyProfileView] = None
    #: End offset of the newest seal served (mirrors ``view.seal_end``).
    seal_end: int = 0
    nodes: int = 0
    metric_total: float = 0.0
    #: Wall time when this run last advanced to a new seal.
    last_seal_at: float = 0.0
    first_seen_at: float = 0.0
    refreshes: int = 0
    advances: int = 0
    #: True while the last refresh failed and the view is serving the last
    #: sealed prefix it successfully read (the degrade-don't-crash state).
    stalled: bool = False
    error: str = ""

    @property
    def name(self) -> str:
        base = os.path.basename(self.path)
        return base[:-len(PROFILE_SUFFIX)] if base.endswith(PROFILE_SUFFIX) \
            else base


@dataclass
class WatcherTick:
    """What one :meth:`FleetWatcher.poll_once` pass observed and did."""

    now: float = 0.0
    runs_live: int = 0
    runs_stalled: int = 0
    discovered: List[str] = field(default_factory=list)
    advanced: List[str] = field(default_factory=list)
    ingested: List[str] = field(default_factory=list)
    pruned: List[str] = field(default_factory=list)
    issues_filed: int = 0
    jobs_ran: List[str] = field(default_factory=list)


class FleetWatcher:
    """Poll-driven monitor for a directory of streaming checkpoint files.

    Drive it one deterministic step at a time with :meth:`poll_once` (tests
    pass an explicit ``now``) or as a daemon loop with :meth:`run`.  All
    scheduling is wall-clock based so a tick replayed with a later ``now``
    fires exactly the jobs that became due.
    """

    def __init__(self, watch_dir: str, store: ProfileStore, *,
                 poll_interval_s: float = 1.0,
                 settle_s: Optional[float] = None,
                 retention: Optional[RetentionPolicy] = None,
                 metric: str = M.METRIC_GPU_TIME,
                 scrub_every_s: Optional[float] = 300.0,
                 drift_every_s: Optional[float] = 120.0,
                 drift_window: int = 8,
                 drift_min_runs: int = 4,
                 drift_thresholds: Optional[Mapping[str, float]] = None,
                 issue_log_path: Optional[str] = None,
                 health: Optional[HealthTimeSeries] = None,
                 snapshot_every_s: Optional[float] = 30.0,
                 dashboard_path: Optional[str] = None,
                 dashboard_every_s: Optional[float] = 5.0,
                 labels: Optional[Mapping[str, str]] = None,
                 remove_ingested: bool = False) -> None:
        self.watch_dir = os.fspath(watch_dir)
        self.store = store
        self.poll_interval_s = float(poll_interval_s)
        self.settle_s = settle_s
        self.retention = retention or RetentionPolicy()
        self.metric = metric
        self.drift_window = int(drift_window)
        self.drift_min_runs = max(2, int(drift_min_runs))
        self.drift_thresholds = dict(drift_thresholds or {})
        self.labels = dict(labels or {})
        self.remove_ingested = bool(remove_ingested)
        self.issue_log = HealthTimeSeries(
            issue_log_path or os.path.join(store.root, ISSUE_LOG_NAME))
        self.health = health
        self.dashboard_path = dashboard_path
        #: Live runs by absolute path.
        self.runs: Dict[str, WatchedRun] = {}
        #: Paths already ingested (or attempted) — never re-tracked.
        self._completed: Dict[str, str] = {}
        #: Standing jobs: name -> (period or None=disabled, runner).  A
        #: ``None`` period disables the job; next-due times start at 0 so
        #: every enabled job fires on the first poll (a watcher coming up
        #: should assess the fleet immediately, not a period later).
        self._jobs: Dict[str, Tuple[Optional[float], object]] = {
            "scrub": (scrub_every_s, self._job_scrub),
            "drift": (drift_every_s, self._job_drift),
            "snapshot": (snapshot_every_s, self._job_snapshot),
            "dashboard": (dashboard_every_s, self._job_dashboard),
        }
        self._next_due: Dict[str, float] = {name: 0.0 for name in self._jobs}
        self.ticks = 0

    # -- the poll loop -----------------------------------------------------------------

    def run(self, max_ticks: Optional[int] = None,
            deadline_s: Optional[float] = None,
            stop: Optional[threading.Event] = None) -> int:
        """Poll until stopped; returns the number of ticks performed.

        Bounded three ways: a ``stop`` event (the daemon case), a tick
        budget, or a wall-clock deadline.  The loop re-checks its deadline
        against the monotonic clock every iteration, so even a caller that
        sets neither bound can stop it promptly via ``stop``.
        """
        stop = stop if stop is not None else threading.Event()
        started = time.monotonic()
        deadline = None if deadline_s is None else started + float(deadline_s)
        ticks = 0
        while not stop.is_set():
            if max_ticks is not None and ticks >= max_ticks:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            self.poll_once()
            ticks += 1
            stop.wait(self.poll_interval_s)
        return ticks

    def poll_once(self, now: Optional[float] = None) -> WatcherTick:
        """One watcher pass: discover, refresh, complete, run due jobs."""
        now = time.time() if now is None else float(now)
        tick = WatcherTick(now=now)
        with TELEMETRY.span("watcher.poll"):
            self._discover(now, tick)
            self._refresh_all(now, tick)
            self._complete_runs(now, tick)
            self._run_due_jobs(now, tick)
            self._publish_gauges(now, tick)
        self.ticks += 1
        return tick

    def close(self) -> None:
        """Release every live view (the watcher can be restarted after)."""
        for run in self.runs.values():
            if run.view is not None:
                run.view.close()
        self.runs.clear()

    def __enter__(self) -> "FleetWatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- discovery and refresh ---------------------------------------------------------

    def _candidate_paths(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.watch_dir))
        except OSError:
            return []
        return [os.path.join(self.watch_dir, name) for name in names
                if name.endswith(PROFILE_SUFFIX)]

    def _discover(self, now: float, tick: WatcherTick) -> None:
        for path in self._candidate_paths():
            if path in self.runs or path in self._completed:
                continue
            run = WatchedRun(path=path, first_seen_at=now)
            try:
                run.view = LazyProfileView.attach(path)
            except ProfileFormatError as error:
                # No intact seal yet (first checkpoint still being written)
                # or the file vanished between listdir and attach.  Either
                # way: not tracked yet, retried on the next poll.
                TELEMETRY.count("watcher.attach_retries")
                del error
                continue
            self._note_seal(run, now)
            run.last_seal_at = now
            self.runs[path] = run
            tick.discovered.append(run.name)
            TELEMETRY.count("watcher.runs_discovered")

    def _note_seal(self, run: WatchedRun, now: float) -> None:
        view = run.view
        if view is None:
            return
        run.seal_end = view.seal_end
        run.nodes = view.stored_node_count()
        run.metric_total = view.total_metric(self.metric)

    def _refresh_all(self, now: float, tick: WatcherTick) -> None:
        for path, run in list(self.runs.items()):
            if run.view is None:
                continue
            run.refreshes += 1
            try:
                advanced = run.view.refresh()
            except ProfileFormatError as error:
                if not os.path.exists(path):
                    # The run's file is gone for good (cleaned up externally,
                    # not a mid-compaction blink): stop tracking it.
                    run.view.close()
                    del self.runs[path]
                    TELEMETRY.count("watcher.runs_vanished")
                    continue
                # Mid-rewrite torn state: degrade to the last sealed prefix
                # the existing view still serves and retry next poll.
                run.stalled = True
                run.error = str(error)
                TELEMETRY.count("watcher.refresh_errors")
                continue
            run.stalled = False
            run.error = ""
            if advanced:
                run.advances += 1
                run.last_seal_at = now
                self._note_seal(run, now)
                tick.advanced.append(run.name)
                TELEMETRY.count("watcher.seals_observed")

    # -- completion and retention ------------------------------------------------------

    def _is_complete(self, run: WatchedRun, now: float) -> bool:
        if is_marked_complete(run.path):
            return True
        if self.settle_s is None:
            return False
        return (now - run.last_seal_at) >= self.settle_s

    def _complete_runs(self, now: float, tick: WatcherTick) -> None:
        for path, run in list(self.runs.items()):
            if not self._is_complete(run, now):
                continue
            if run.view is not None:
                run.view.close()
            del self.runs[path]
            try:
                record = self.store.ingest(path, labels=self.labels or None)
            except (ProfileFormatError, ValueError, OSError) as error:
                # An unreadable or identity-less final seal must not kill the
                # watcher; remember the path so it is not retried forever.
                self._completed[path] = ""
                self._file_issues([Issue(
                    analysis="watcher", node=None,
                    message=f"run {run.name!r} completed but could not be "
                            f"ingested: {error}",
                    severity=Severity.WARNING,
                    suggestion="recover the stream file manually "
                               "(repro.core.storage.recover_profile) or "
                               "delete it")], now)
                tick.issues_filed += 1
                continue
            self._completed[path] = record.run_id
            tick.ingested.append(record.run_id)
            TELEMETRY.count("watcher.runs_ingested")
            if self.remove_ingested:
                for stale in (path, f"{path}{DONE_SUFFIX}"):
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
            if self.retention.enabled:
                report = self.retention.apply(self.store, now=now)
                tick.pruned.extend(report.pruned_run_ids)

    # -- standing jobs -----------------------------------------------------------------

    def _run_due_jobs(self, now: float, tick: WatcherTick) -> None:
        for name, (period, runner) in self._jobs.items():
            if period is None or now < self._next_due[name]:
                continue
            self._next_due[name] = now + float(period)
            with TELEMETRY.span(f"watcher.job.{name}"):
                runner(now, tick)
            tick.jobs_ran.append(name)

    def _file_issues(self, issues: List[Issue], now: float,
                     workload: str = "") -> int:
        """Append analyzer issues to the persisted JSONL issue log."""
        for issue in issues:
            row = issue.as_dict()
            if workload:
                row["workload"] = workload
            self.issue_log.append(row, ts=now)
            TELEMETRY.count("watcher.issues_filed")
        return len(issues)

    def _job_scrub(self, now: float, tick: WatcherTick) -> None:
        report = self.store.scrub()
        del report  # quarantine state is re-read below, fresh
        tick.issues_filed += self._file_issues(
            quarantine_issues(self.store), now)

    def _drift_candidates(self) -> Dict[str, List[str]]:
        """Per-workload rolling windows large enough to split and diff."""
        windows: Dict[str, List[str]] = {}
        for record in self.store.runs():
            if record.healthy:
                windows.setdefault(record.workload, []).append(record.run_id)
        return {workload: ids[-self.drift_window:]
                for workload, ids in windows.items()
                if len(ids) >= self.drift_min_runs}

    def _job_drift(self, now: float, tick: WatcherTick) -> None:
        """Rolling-window population drift, per workload.

        The window's older half is the baseline population, its newer half
        the candidate.  ``name_drift`` over two index-served aggregators is
        the cheap gate (no profile opened over an indexed store); only when
        some name actually moved do both halves get fleet-merged and judged
        by :class:`RegressionAnalysis`, whose ranked issues are persisted.
        """
        # Imported here, not at module top: regression itself imports the
        # fleet differential, so a module-level import would close a cycle
        # through ``repro.analyzer.__init__``.
        from ..analyzer.regression import RegressionAnalysis
        for workload, window in self._drift_candidates().items():
            half = len(window) // 2
            base_ids, cand_ids = window[:half], window[half:]
            base_agg = FleetAggregator.from_store(self.store,
                                                  run_ids=base_ids)
            cand_agg = FleetAggregator.from_store(self.store,
                                                  run_ids=cand_ids)
            try:
                for agg in (base_agg, cand_agg):
                    degraded = degradation_issues(agg.degradation_report())
                    tick.issues_filed += self._file_issues(
                        degraded, now, workload=workload)
                moved = [delta for delta in
                         name_drift(base_agg, cand_agg, metric=self.metric)
                         if delta.status != STATUS_UNCHANGED]
                if not moved:
                    continue
                baseline, candidate = self._merge_halves(
                    workload, base_ids, cand_ids)
            finally:
                base_agg.close()
                cand_agg.close()
            collector = IssueCollector()
            RegressionAnalysis(baseline=baseline, metric=self.metric,
                               **self.drift_thresholds).run(candidate,
                                                            collector)
            tick.issues_filed += self._file_issues(collector.issues, now,
                                                   workload=workload)

    def _merge_halves(self, workload: str, base_ids: List[str],
                      cand_ids: List[str]):
        """Fleet-merge both window halves into eager trees, closing the
        per-run views once their observations are folded in."""
        merged = []
        for label, run_ids in (("baseline", base_ids),
                               ("candidate", cand_ids)):
            views = [self.store.open_view(run_id) for run_id in run_ids]
            try:
                merged.append(merge_population(views, f"{workload}:{label}"))
            finally:
                for view in views:
                    view.close()
        return merged[0], merged[1]

    def _job_snapshot(self, now: float, tick: WatcherTick) -> None:
        if self.health is None:
            return
        record = TELEMETRY.snapshot()
        record["watcher"] = {
            "runs_live": len(self.runs),
            "runs_stalled": sum(1 for run in self.runs.values()
                                if run.stalled),
            "ticks": self.ticks,
            "store_runs": len(self.store),
        }
        self.health.append(record, ts=now)

    def _job_dashboard(self, now: float, tick: WatcherTick) -> None:
        if self.dashboard_path is None:
            return
        # Imported here, not at module top: fleet must stay importable
        # without the gui layer, and only dashboard-enabled watchers pay it.
        from ..gui.dashboard import save_dashboard
        save_dashboard(self.dashboard_path, store=self.store,
                       health=self.health, live=list(self.runs.values()),
                       issue_log=self.issue_log, metric=self.metric,
                       refresh_s=max(1, int(self.poll_interval_s)))

    # -- gauges ------------------------------------------------------------------------

    def _publish_gauges(self, now: float, tick: WatcherTick) -> None:
        tick.runs_live = len(self.runs)
        tick.runs_stalled = sum(1 for run in self.runs.values()
                                if run.stalled)
        TELEMETRY.gauge_set("watcher.runs_live", float(tick.runs_live))
        TELEMETRY.gauge_set("watcher.runs_stalled",
                            float(tick.runs_stalled))
        newest = max((run.last_seal_at for run in self.runs.values()),
                     default=0.0)
        TELEMETRY.gauge_set("watcher.last_seal_age_s",
                            max(0.0, now - newest) if newest else -1.0)
        for run in self.runs.values():
            TELEMETRY.gauge_set(f"watcher.run.{run.name}.nodes",
                                float(run.nodes))
            TELEMETRY.gauge_set(f"watcher.run.{run.name}.{self.metric}",
                                float(run.metric_total))
