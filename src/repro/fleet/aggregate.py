"""Cross-run fleet aggregation over stored profiles.

A :class:`FleetAggregator` answers "across these N runs, where does the time
go?" in two gears:

* **lazy column sums** — ``total_metric``, ``aggregate_by_name`` and
  ``top_kernels`` combine per-run answers served by each profile's
  mmap-backed ``LazyProfileView``: one frame table plus one metric column per
  shard is decoded, per run, and nothing is ever hydrated into a merged
  tree.  Per-name sums are additive across runs for exactly the reason they
  are additive across shards (a merged node's aggregate is the Welford merge
  of its contributions, and sums add), so the fleet-wide bottom-up view costs
  column sums, not tree builds;
* **the fleet CCT** — :meth:`merged_tree` unions every run's shards with
  ``CallingContextTree.merge_from`` (parallel Welford ``MetricSet.merge``
  per aligned context), in run order then shard order — the identical merge
  sequence a single profile holding all those shards would replay, which is
  what makes fleet-merging N single-run profiles bit-for-bit equivalent to
  one profile that collected all N runs (the property the fleet test suite
  pins down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from ..core import metrics as M
from ..core.cct import CallingContextTree, ShardedCallingContextTree
from ..core.storage import LazyProfileView, ProfileFormatError
from ..dlmonitor.callpath import FrameKind

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from .store import ProfileStore


@dataclass
class DegradedRun:
    """One run a fleet query had to proceed without."""

    run_id: str
    #: Why (a ``ProfileCorruptionError``/``ProfileFormatError`` message, a
    #: catalog quarantine reason, or an OS-level read failure).
    reason: str
    #: Where it dropped out: ``"catalog"`` (already quarantined when the
    #: aggregator was built), ``"open"`` (failed to open/map), or
    #: ``"query"`` (corruption detected lazily while answering a query).
    stage: str

    def as_dict(self) -> Dict[str, str]:
        return {"run_id": self.run_id, "reason": self.reason,
                "stage": self.stage}


class FleetAggregator:
    """Lazy cross-run aggregation over an ordered set of profile views.

    **Graceful degradation**: a corrupt run never poisons a fleet answer and
    never turns one into an exception.  Runs already quarantined in the
    catalog are skipped at construction; a run whose corruption only
    surfaces lazily — a checksum failure on the first touch of a block
    mid-query — is demoted on the spot: dropped from the healthy set,
    quarantined back into the originating store (when known), and recorded
    in :meth:`degradation_report`, while the query returns the aggregate
    over every healthy run.
    """

    def __init__(self, views: Mapping[str, LazyProfileView],
                 owns_views: bool = False,
                 program_name: str = "fleet",
                 store: Optional["ProfileStore"] = None,
                 degraded: Optional[List[DegradedRun]] = None) -> None:
        #: ``run id → LazyProfileView`` in run order (run order is the merge
        #: order, so it is part of the aggregator's contract).
        self._views: Dict[str, LazyProfileView] = dict(views)
        self._owns_views = owns_views
        self.program_name = program_name
        self._store = store
        self._degraded: Dict[str, DegradedRun] = {
            entry.run_id: entry for entry in (degraded or [])}
        self._requested = len(self._views) + len(self._degraded)
        self._merged: Optional[CallingContextTree] = None
        self._aggregate_cache: Dict = {}
        self._total_cache: Dict[str, float] = {}
        self._fingerprint: Optional[tuple] = None

    @classmethod
    def from_store(cls, store: "ProfileStore",
                   run_ids: Optional[List[str]] = None,
                   **filters) -> "FleetAggregator":
        """Open an aggregator over a store's runs (explicit ids or filters).

        The returned aggregator owns the views it opened: ``close()`` (or the
        context manager) releases every mapping.  Quarantined runs — and
        runs whose profile fails to open — are skipped into the degradation
        report instead of raising; an explicit ``run_ids`` selection that
        names a quarantined run degrades it the same way rather than
        resurrecting it.
        """
        if run_ids is not None:
            records = [store.get(run_id) for run_id in run_ids]
        else:
            records = store.find(**filters)
        views: Dict[str, LazyProfileView] = {}
        degraded: List[DegradedRun] = []
        try:
            for record in records:
                if not record.healthy:
                    degraded.append(DegradedRun(
                        run_id=record.run_id, stage="catalog",
                        reason=f"quarantined: {record.quarantine_reason}"))
                    continue
                try:
                    views[record.run_id] = store.open_view(record.run_id)
                except (ProfileFormatError, OSError) as error:
                    degraded.append(DegradedRun(
                        run_id=record.run_id, stage="open",
                        reason=str(error)))
                    store.quarantine(record.run_id, str(error))
        except BaseException:
            for view in views.values():
                view.close()
            raise
        return cls(views, owns_views=True, store=store, degraded=degraded)

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._owns_views:
            for view in self._views.values():
                view.close()

    def __enter__(self) -> "FleetAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- run inventory ---------------------------------------------------------------

    def run_ids(self) -> List[str]:
        return list(self._views)

    @property
    def run_count(self) -> int:
        return len(self._views)

    def view(self, run_id: str) -> LazyProfileView:
        return self._views[run_id]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for view in self._views.values():
            for metric in view.metric_names():
                if metric not in names:
                    names.append(metric)
        return names

    @property
    def hydrated_run_ids(self) -> List[str]:
        """Runs whose views were fully hydrated (lazy queries keep this empty)."""
        return [run_id for run_id, view in self._views.items() if view.hydrated]

    # -- graceful degradation ------------------------------------------------------------

    @property
    def degraded_run_ids(self) -> List[str]:
        return list(self._degraded)

    @property
    def is_degraded(self) -> bool:
        return bool(self._degraded)

    def degradation_report(self) -> Dict[str, object]:
        """Which runs this aggregator is answering *without*, and why.

        Schema (also in ``docs/FLEET.md``)::

            {"requested_runs": N, "healthy_runs": M, "degraded": bool,
             "degraded_runs": [{"run_id", "reason", "stage"}, ...]}
        """
        return {
            "requested_runs": self._requested,
            "healthy_runs": len(self._views),
            "degraded": bool(self._degraded),
            "degraded_runs": [entry.as_dict()
                              for entry in self._degraded.values()],
        }

    def _demote(self, run_id: str, reason: str) -> None:
        """Drop a run that turned out corrupt mid-query.

        The view is closed and removed, partial answers memoized before the
        corruption surfaced are discarded, the run is recorded in the
        degradation report, and — when this aggregator came from a store —
        quarantined in its catalog so every later reader skips it too.
        """
        view = self._views.pop(run_id, None)
        if view is not None and self._owns_views:
            view.close()
        self._degraded[run_id] = DegradedRun(run_id=run_id, reason=reason,
                                             stage="query")
        self._aggregate_cache.clear()
        self._total_cache.clear()
        self._merged = None
        if self._store is not None:
            try:
                self._store.quarantine(run_id, reason)
            except KeyError:  # removed from the catalog behind our back
                pass

    def _per_run(self, compute) -> Dict[str, object]:
        """``compute(view)`` for every healthy run, demoting corrupt ones.

        Corruption (``ProfileCorruptionError``/``ProfileFormatError``) and
        OS-level read failures degrade the run; any other exception — a bug,
        a bad argument — propagates untouched.
        """
        results: Dict[str, object] = {}
        for run_id, view in list(self._views.items()):
            try:
                results[run_id] = compute(view)
            except (ProfileFormatError, OSError) as error:
                self._demote(run_id, str(error))
        return results

    # -- lazy column-sum queries --------------------------------------------------------

    def _current_fingerprint(self) -> tuple:
        return tuple((run_id, view.seal_end, view._generation_signature())
                     for run_id, view in self._views.items())

    def _ensure_fresh(self) -> None:
        """Drop memoized results when any underlying view moved.

        Store-backed views are immutable files, so this never fires for
        them; but an aggregator may also hold live-attached views
        (``LazyProfileView.attach`` + ``refresh``) or views whose hydrated
        trees were mutated — their seal position / generation signatures are
        the same invalidation keys the views use for their own caches.
        Queries re-stamp the fingerprint *after* computing (``_stamp``), so
        the decoding a query itself performs — which bumps shard
        generations without changing any result — does not self-invalidate.
        """
        if self._current_fingerprint() != self._fingerprint:
            self._aggregate_cache.clear()
            self._total_cache.clear()
            self._merged = None

    def _stamp(self) -> None:
        self._fingerprint = self._current_fingerprint()

    def total_metric(self, metric: str) -> float:
        """Fleet-wide metric total: the sum of every run's column sums.

        A run whose column blocks fail verification is demoted (see
        :meth:`degradation_report`) and the total covers the healthy rest.
        """
        self._ensure_fresh()
        cached = self._total_cache.get(metric)
        if cached is not None:
            return cached
        per_run = self._per_run(lambda view: view.total_metric(metric))
        total = float(sum(per_run.values()))
        self._total_cache[metric] = total
        self._stamp()
        return total

    def per_run_totals(self, metric: str) -> Dict[str, float]:
        """``run id → metric total`` (the per-run breakdown of a fleet sum)."""
        return {run_id: float(total) for run_id, total in
                self._per_run(lambda view: view.total_metric(metric)).items()}

    def aggregate_by_name(self, kind: Optional[FrameKind] = None,
                          metric: str = M.METRIC_GPU_TIME) -> Dict[str, float]:
        """Fleet-wide bottom-up rollup: per-run aggregations summed by name.

        Each run answers through ``LazyProfileView.column_aggregate_by_name``
        — the metric column walked against a names-only partial decode of the
        frame tables, no ``Frame``/node objects, no merged tree anywhere —
        which is what keeps a fleet-wide rollup a column-sum problem instead
        of an N-tree decode.
        """
        self._ensure_fresh()
        key = (kind, metric)
        cached = self._aggregate_cache.get(key)
        if cached is not None:
            return dict(cached)
        per_run = self._per_run(
            lambda view: view.column_aggregate_by_name(kind=kind,
                                                       metric=metric))
        totals: Dict[str, float] = {}
        for rows in per_run.values():
            for name, value in rows.items():
                totals[name] = totals.get(name, 0.0) + value
        self._aggregate_cache[key] = totals
        self._stamp()
        return dict(totals)

    def top_kernels(self, k: int = 10,
                    metric: str = M.METRIC_GPU_TIME) -> List[Dict[str, object]]:
        """The fleet's ``k`` most expensive kernels (lazy column sums only).

        Mirrors ``ProfileDatabase.top_kernels`` — name, total, fraction of
        the fleet-wide total — but aggregated across every run.
        """
        totals = self.aggregate_by_name(kind=FrameKind.GPU_KERNEL, metric=metric)
        ranked = sorted(totals.items(), key=lambda item: -item[1])[:k]
        fleet_total = self.total_metric(metric) or 1.0
        return [{"kernel": name, metric: value, "fraction": value / fleet_total}
                for name, value in ranked]

    # -- the fleet CCT ------------------------------------------------------------------

    def merged_tree(self) -> CallingContextTree:
        """The fleet-wide CCT: every run's shards unioned into one tree.

        Hydration and merge cost are paid once and cached (until an
        underlying view moves — see ``_ensure_fresh``); runs merge in run
        order and, within a run, shard order — the same sequence a single
        profile containing all the shards would merge in, so the result is
        bit-for-bit the tree that profile's merged view would serve.
        """
        self._ensure_fresh()
        if self._merged is None:
            # Hydrate first (demoting runs whose blocks turn out corrupt),
            # then merge only fully-decoded trees: a run must never
            # contribute half its shards to the fleet CCT.
            hydrated_trees = self._per_run(lambda view: view.hydrate())
            combined = CallingContextTree(self.program_name)
            combined.is_merged_view = True
            for run_id in list(self._views):
                hydrated = hydrated_trees.get(run_id)
                if hydrated is None:
                    continue
                if isinstance(hydrated, ShardedCallingContextTree):
                    for shard in hydrated.shards().values():
                        combined.merge_from(shard)
                else:
                    combined.merge_from(hydrated)
            self._merged = combined
            self._stamp()
        return self._merged

    def merged(self) -> CallingContextTree:
        """Alias so the aggregator plugs into tree-likes' query surfaces."""
        return self.merged_tree()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FleetAggregator(runs={len(self._views)}, "
                f"merged={self._merged is not None})")
