"""Cross-run fleet aggregation over stored profiles.

A :class:`FleetAggregator` answers "across these N runs, where does the time
go?" in three gears, fastest first:

* **index rows** — for runs carrying a valid fleet-index summary (see
  ``repro.fleet.index``), ``total_metric``, ``aggregate_by_name``,
  ``top_kernels``, ``per_run_totals`` and ``name_states`` are pure dict
  arithmetic over catalog-side columnar aggregates: *no profile is opened at
  all*.  Indexed answers are bit-for-bit equal to the lazy-view path — the
  index rows are the per-name Welford states
  ``LazyProfileView.column_name_states`` computes, whose ``sum`` fields
  follow the exact accumulation recurrence of the column fast path;
* **lazy column sums** — runs without a usable summary answer through their
  mmap-backed ``LazyProfileView``: one frame table plus one metric column
  per shard is decoded and nothing is hydrated into a merged tree.  With
  ``max_workers > 1`` these per-run decodes run on a thread pool (zlib and
  struct release the GIL);
* **the fleet CCT** — :meth:`merged_tree` unions every run's shards with
  ``CallingContextTree.merge_from`` (parallel Welford ``MetricSet.merge``
  per aligned context), in run order then shard order — the identical merge
  sequence a single profile holding all those shards would replay, which is
  what makes fleet-merging N single-run profiles bit-for-bit equivalent to
  one profile that collected all N runs (the property the fleet test suite
  pins down).  Structure needs bytes, so this gear opens views on demand.

Per-run query passes are memoized per ``(query, fingerprint)``: repeated
``top_kernels(k=...)`` calls with different ``k`` reuse one aggregate pass,
and the memo drops whenever an underlying view moves (live attach/refresh).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

from ..core import metrics as M
from ..core.cct import CallingContextTree, ShardedCallingContextTree
from ..core.storage import (ALL_KINDS, KIND_CODES, LazyProfileView,
                            ProfileFormatError, accumulate_name_state)
from ..dlmonitor.callpath import FrameKind
from ..obs import TELEMETRY
from .index import RunSummary

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from .store import ProfileStore, RunRecord


@dataclass
class DegradedRun:
    """One run a fleet query had to proceed without."""

    run_id: str
    #: Why (a ``ProfileCorruptionError``/``ProfileFormatError`` message, a
    #: catalog quarantine reason, or an OS-level read failure).
    reason: str
    #: Where it dropped out: ``"catalog"`` (already quarantined when the
    #: aggregator was built), ``"open"`` (failed to open/map), or
    #: ``"query"`` (corruption detected lazily while answering a query).
    stage: str

    def as_dict(self) -> Dict[str, str]:
        return {"run_id": self.run_id, "reason": self.reason,
                "stage": self.stage}


class _RunSource:
    """One healthy run: its catalog record, index summary and/or open view.

    ``summary`` present → index-served (no I/O per query); otherwise the
    ``view`` (opened eagerly for fallback runs, on demand for indexed runs
    that a structural query touches) serves the lazy column paths.
    """

    __slots__ = ("run_id", "record", "summary", "view")

    def __init__(self, run_id: str, record: Optional["RunRecord"] = None,
                 summary: Optional[RunSummary] = None,
                 view: Optional[LazyProfileView] = None) -> None:
        self.run_id = run_id
        self.record = record
        self.summary = summary
        self.view = view


class FleetAggregator:
    """Cross-run aggregation over an ordered set of stored runs.

    **Graceful degradation**: a corrupt run never poisons a fleet answer and
    never turns one into an exception.  Runs already quarantined in the
    catalog are skipped at construction; a fallback run whose corruption
    only surfaces lazily — a checksum failure on the first touch of a block
    mid-query — is demoted on the spot: dropped from the healthy set,
    quarantined back into the originating store (when known), and recorded
    in :meth:`degradation_report`, while the query returns the aggregate
    over every healthy run.  Index-served runs never read profile bytes, so
    rot that postdates ingest cannot surface through them — detecting it is
    ``ProfileStore.scrub``'s job (or pass ``use_index=False`` to force
    byte-touching queries).
    """

    def __init__(self, views: Mapping[str, LazyProfileView],
                 owns_views: bool = False,
                 program_name: str = "fleet",
                 store: Optional["ProfileStore"] = None,
                 degraded: Optional[List[DegradedRun]] = None,
                 max_workers: Optional[int] = None) -> None:
        #: ``run id → _RunSource`` in run order (run order is the merge
        #: order, so it is part of the aggregator's contract).
        self._sources: Dict[str, _RunSource] = {
            run_id: _RunSource(run_id, view=view)
            for run_id, view in dict(views).items()}
        self._owns_views = owns_views
        self.program_name = program_name
        self._store = store
        self._max_workers = max_workers
        self._degraded: Dict[str, DegradedRun] = {
            entry.run_id: entry for entry in (degraded or [])}
        #: ``run id → why its index summary was unusable`` (fallback runs).
        self._index_problems: Dict[str, str] = {}
        self._requested = len(self._sources) + len(self._degraded)
        self._merged: Optional[CallingContextTree] = None
        self._aggregate_cache: Dict = {}
        self._total_cache: Dict[str, float] = {}
        #: Memoized per-run passes, keyed ``(query, ...)`` — valid for the
        #: stamped fingerprint only (cleared by ``_ensure_fresh``).
        self._per_run_cache: Dict[Tuple, Dict[str, object]] = {}
        #: How many per-run aggregate passes have actually run (each one
        #: decodes or reads every run once) — observable, so tests can pin
        #: that repeated queries reuse passes instead of re-scanning.
        self.aggregate_passes = 0
        self._fingerprint: Optional[tuple] = None

    @classmethod
    def from_store(cls, store: "ProfileStore",
                   run_ids: Optional[List[str]] = None,
                   max_workers: Optional[int] = None,
                   use_index: bool = True,
                   **filters) -> "FleetAggregator":
        """Open an aggregator over a store's runs (explicit ids or filters).

        Runs with a valid fleet-index summary are *not* opened — their
        queries will be served from index rows.  Runs without one (a
        pre-index store, a stale or corrupt index file, ``use_index=False``)
        open eagerly as before; open failures are skipped into the
        degradation report and quarantined instead of raising, and an
        explicit ``run_ids`` selection that names a quarantined run degrades
        it the same way rather than resurrecting it.  ``max_workers`` sets
        the thread-pool width for fallback per-run decodes (``None``/``1``
        = sequential).  The returned aggregator owns any views it opens:
        ``close()`` (or the context manager) releases every mapping.
        """
        if run_ids is not None:
            records = [store.get(run_id) for run_id in run_ids]
        else:
            records = store.find(**filters)
        index = store.fleet_index if use_index else None
        sources: Dict[str, _RunSource] = {}
        degraded: List[DegradedRun] = []
        problems: Dict[str, str] = {}
        try:
            for record in records:
                if not record.healthy:
                    degraded.append(DegradedRun(
                        run_id=record.run_id, stage="catalog",
                        reason=f"quarantined: {record.quarantine_reason}"))
                    continue
                summary = problem = None
                if index is not None:
                    summary, problem = index.summary_for(record)
                if summary is not None:
                    sources[record.run_id] = _RunSource(
                        record.run_id, record=record, summary=summary)
                    continue
                if problem is not None:
                    problems[record.run_id] = problem
                try:
                    view = store.open_view(record.run_id)
                except (ProfileFormatError, OSError) as error:
                    degraded.append(DegradedRun(
                        run_id=record.run_id, stage="open",
                        reason=str(error)))
                    store.quarantine(record.run_id, str(error))
                    continue
                sources[record.run_id] = _RunSource(
                    record.run_id, record=record, view=view)
        except BaseException:
            for source in sources.values():
                if source.view is not None:
                    source.view.close()
            raise
        aggregator = cls({}, owns_views=True, store=store, degraded=degraded,
                         max_workers=max_workers)
        aggregator._sources = sources
        aggregator._index_problems = problems
        aggregator._requested = len(sources) + len(degraded)
        if degraded and TELEMETRY.enabled:
            TELEMETRY.count("fleet.degraded_runs", len(degraded))
        return aggregator

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._owns_views:
            for source in self._sources.values():
                if source.view is not None:
                    source.view.close()

    def __enter__(self) -> "FleetAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- run inventory ---------------------------------------------------------------

    def run_ids(self) -> List[str]:
        return list(self._sources)

    @property
    def run_count(self) -> int:
        return len(self._sources)

    @property
    def indexed_run_ids(self) -> List[str]:
        """Runs whose queries are served from index rows (no profile I/O)."""
        return [run_id for run_id, source in self._sources.items()
                if source.summary is not None]

    @property
    def opened_run_ids(self) -> List[str]:
        """Runs holding an open ``LazyProfileView`` (fallback or structural)."""
        return [run_id for run_id, source in self._sources.items()
                if source.view is not None]

    def view(self, run_id: str) -> LazyProfileView:
        """The run's lazy view (opened on demand for index-served runs)."""
        source = self._sources[run_id]
        view = self._ensure_view(source)
        if view is None:
            raise KeyError(f"run {run_id!r} has no readable profile "
                           f"(demoted: {self._degraded[run_id].reason})")
        return view

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for source in self._sources.values():
            if source.summary is not None:
                run_metrics = source.summary.metric_names()
            elif source.view is not None:
                run_metrics = source.view.metric_names()
            else:  # pragma: no cover - index-served source always has summary
                run_metrics = []
            for metric in run_metrics:
                if metric not in names:
                    names.append(metric)
        return names

    @property
    def hydrated_run_ids(self) -> List[str]:
        """Runs whose views were fully hydrated (lazy queries keep this empty)."""
        return [run_id for run_id, source in self._sources.items()
                if source.view is not None and source.view.hydrated]

    # -- graceful degradation ------------------------------------------------------------

    @property
    def degraded_run_ids(self) -> List[str]:
        return list(self._degraded)

    @property
    def is_degraded(self) -> bool:
        return bool(self._degraded)

    def degradation_report(self) -> Dict[str, object]:
        """Which runs this aggregator is answering *without*, and why.

        Schema (also in ``docs/FLEET.md``)::

            {"requested_runs": N, "healthy_runs": M, "degraded": bool,
             "degraded_runs": [{"run_id", "reason", "stage"}, ...],
             "index": {"indexed_runs": I, "fallback_runs": F,
                       "problems": [{"run_id", "reason"}, ...]},
             "counts": {"requested", "healthy", "degraded", "indexed",
                        "fallback", "index_problems",
                        "degraded_by_stage": {stage: n}}}

        The ``index`` section is informational: a run listed in its
        ``problems`` (a corrupt/stale/version-mismatched summary) still
        answers every query — through the lazy view — it just lost the fast
        path.  Only ``degraded_runs`` entries are missing from answers.

        ``counts`` is a stable flat rollup (every value an ``int`` except
        the per-stage dict) so dashboards and tests read sizes directly
        instead of ``len()``-ing nested lists; its key set is pinned by a
        schema-stability test and only ever grows.
        """
        indexed = len(self.indexed_run_ids)
        by_stage: Dict[str, int] = {}
        for entry in self._degraded.values():
            by_stage[entry.stage] = by_stage.get(entry.stage, 0) + 1
        return {
            "requested_runs": self._requested,
            "healthy_runs": len(self._sources),
            "degraded": bool(self._degraded),
            "degraded_runs": [entry.as_dict()
                              for entry in self._degraded.values()],
            "index": {
                "indexed_runs": indexed,
                "fallback_runs": len(self._sources) - indexed,
                "problems": [{"run_id": run_id, "reason": reason}
                             for run_id, reason in
                             self._index_problems.items()],
            },
            "counts": {
                "requested": self._requested,
                "healthy": len(self._sources),
                "degraded": len(self._degraded),
                "indexed": indexed,
                "fallback": len(self._sources) - indexed,
                "index_problems": len(self._index_problems),
                "degraded_by_stage": by_stage,
            },
        }

    def _demote(self, run_id: str, reason: str, stage: str = "query") -> None:
        """Drop a run that turned out corrupt mid-query (or unopenable).

        The view is closed and removed, partial answers memoized before the
        corruption surfaced are discarded, the run is recorded in the
        degradation report, and — when this aggregator came from a store —
        quarantined in its catalog so every later reader skips it too.
        """
        source = self._sources.pop(run_id, None)
        if source is not None and source.view is not None and self._owns_views:
            source.view.close()
        self._degraded[run_id] = DegradedRun(run_id=run_id, reason=reason,
                                             stage=stage)
        if TELEMETRY.enabled:
            TELEMETRY.count("fleet.degraded_runs")
        self._aggregate_cache.clear()
        self._total_cache.clear()
        self._per_run_cache.clear()
        self._merged = None
        if self._store is not None:
            try:
                self._store.quarantine(run_id, reason)
            except KeyError:  # removed from the catalog behind our back
                pass

    def _ensure_view(self, source: _RunSource) -> Optional[LazyProfileView]:
        """The source's open view, opening it from the store on demand.

        Index-served runs only reach here from structural queries
        (``merged_tree``/``view``).  An open failure demotes the run
        (stage ``"open"``) and returns None.
        """
        if source.view is not None:
            return source.view
        if self._store is None:  # pragma: no cover - storeless sources hold views
            return None
        try:
            source.view = self._store.open_view(source.run_id)
        except (ProfileFormatError, OSError) as error:
            self._demote(source.run_id, str(error), stage="open")
            return None
        return source.view

    def _gather(self, tasks: List[Tuple[str, Callable]]) -> Dict[str, object]:
        """Run per-run thunks, demoting runs whose thunk hits corruption.

        Corruption (``ProfileCorruptionError``/``ProfileFormatError``) and
        OS-level read failures degrade the run; any other exception — a bug,
        a bad argument — propagates untouched.  With ``max_workers > 1`` the
        thunks run on a thread pool: each touches only its own run's view,
        and zlib decompression / struct decoding release the GIL, so
        fallback decode work over many runs genuinely overlaps.  Results
        keep task order; demotion happens on the calling thread afterwards.
        """
        results: Dict[str, object] = {}
        failures: Dict[str, str] = {}
        workers = self._max_workers or 0
        if workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(tasks))) as pool:
                futures = [(run_id, pool.submit(thunk))
                           for run_id, thunk in tasks]
            for run_id, future in futures:
                error = future.exception()
                if error is None:
                    results[run_id] = future.result()
                elif isinstance(error, (ProfileFormatError, OSError)):
                    failures[run_id] = str(error)
                else:
                    raise error
        else:
            for run_id, thunk in tasks:
                try:
                    results[run_id] = thunk()
                except (ProfileFormatError, OSError) as error:
                    failures[run_id] = str(error)
        for run_id, reason in failures.items():
            self._demote(run_id, reason)
        return results

    def _per_run(self, key: Tuple, index_value: Callable,
                 view_compute: Callable) -> Dict[str, object]:
        """One memoized per-run pass: index rows where valid, views otherwise.

        ``index_value(summary)`` serves summary-backed runs (pure dict
        reads); ``view_compute(view)`` serves the rest, demoting runs whose
        blocks turn out corrupt.  The result — ``run id → per-run answer``
        in run order — is memoized under ``key`` for the current
        fingerprint, so every query shape that shares a pass (``top_kernels``
        with any ``k``, ``total_metric`` + ``per_run_totals``) pays it once.
        """
        cached = self._per_run_cache.get(key)
        if cached is not None:
            return cached
        self.aggregate_passes += 1
        results: Dict[str, object] = {}
        lazy: List[Tuple[str, Callable]] = []
        for source in self._sources.values():
            if source.summary is not None:
                results[source.run_id] = index_value(source.summary)
            else:
                results[source.run_id] = None  # placeholder keeps run order
                lazy.append((source.run_id,
                             (lambda view=source.view: view_compute(view))))
        if TELEMETRY.enabled:
            TELEMETRY.count("fleet.aggregate_passes")
            if len(results) > len(lazy):
                TELEMETRY.count("fleet.index_served",
                                len(results) - len(lazy))
            if lazy:
                TELEMETRY.count("fleet.lazy_served", len(lazy))
        if lazy:
            gathered = self._gather(lazy)
            for run_id, value in gathered.items():
                results[run_id] = value
            if len(gathered) < len(lazy):  # demotions: drop their placeholders
                results = {run_id: value for run_id, value in results.items()
                           if run_id in self._sources}
        self._per_run_cache[key] = results
        return results

    # -- lazy column-sum queries --------------------------------------------------------

    def _current_fingerprint(self) -> tuple:
        return tuple(
            (run_id, source.view.seal_end, source.view._generation_signature())
            if source.view is not None
            else (run_id, "index", source.summary.digest)
            for run_id, source in self._sources.items())

    def _ensure_fresh(self) -> None:
        """Drop memoized results when any underlying view moved.

        Store-backed views are immutable files, so this never fires for
        them; but an aggregator may also hold live-attached views
        (``LazyProfileView.attach`` + ``refresh``) or views whose hydrated
        trees were mutated — their seal position / generation signatures are
        the same invalidation keys the views use for their own caches.
        Queries re-stamp the fingerprint *after* computing (``_stamp``), so
        the decoding a query itself performs — which bumps shard
        generations without changing any result — does not self-invalidate.
        """
        if self._current_fingerprint() != self._fingerprint:
            self._aggregate_cache.clear()
            self._total_cache.clear()
            self._per_run_cache.clear()
            self._merged = None

    def _stamp(self) -> None:
        self._fingerprint = self._current_fingerprint()

    def total_metric(self, metric: str) -> float:
        """Fleet-wide metric total: the sum of every run's column sums.

        Index-served runs contribute the catalog-side total recorded at
        ingest (the identical float the lazy path recomputes); a fallback
        run whose column blocks fail verification is demoted (see
        :meth:`degradation_report`) and the total covers the healthy rest.
        """
        with TELEMETRY.span("fleet.query.total_metric", metric=metric):
            self._ensure_fresh()
            cached = self._total_cache.get(metric)
            if cached is not None:
                return cached
            per_run = self._per_run(
                ("total", metric),
                lambda summary: summary.totals.get(metric, 0.0),
                lambda view: view.total_metric(metric))
            total = float(sum(per_run.values()))
            self._total_cache[metric] = total
            self._stamp()
            return total

    def per_run_totals(self, metric: str) -> Dict[str, float]:
        """``run id → metric total`` (the per-run breakdown of a fleet sum).

        Shares its per-run pass with :meth:`total_metric` — asking for the
        breakdown after the total (or vice versa) costs no second scan.
        """
        with TELEMETRY.span("fleet.query.per_run_totals", metric=metric):
            self._ensure_fresh()
            per_run = self._per_run(
                ("total", metric),
                lambda summary: summary.totals.get(metric, 0.0),
                lambda view: view.total_metric(metric))
            self._stamp()
            return {run_id: float(total)
                    for run_id, total in per_run.items()}

    def aggregate_by_name(self, kind: Optional[FrameKind] = None,
                          metric: str = M.METRIC_GPU_TIME) -> Dict[str, float]:
        """Fleet-wide bottom-up rollup: per-run aggregations summed by name.

        Indexed runs answer from their summary rows (``name → sum`` in pure
        dict reads); fallback runs answer through
        ``LazyProfileView.column_aggregate_by_name`` — the metric column
        walked against a names-only partial decode of the frame tables.  The
        two sources produce identical floats (the index rows are computed by
        the same accumulation recurrence at ingest), and per-run answers sum
        name-wise in run order either way, so mixing them keeps the result
        bit-for-bit equal to the all-lazy path.
        """
        with TELEMETRY.span("fleet.query.aggregate_by_name", metric=metric,
                            kind=kind.name if kind is not None else ""):
            self._ensure_fresh()
            key = (kind, metric)
            cached = self._aggregate_cache.get(key)
            if cached is not None:
                return dict(cached)
            wanted = KIND_CODES[kind] if kind is not None else ALL_KINDS
            per_run = self._per_run(
                ("aggregate", kind, metric),
                lambda summary: summary.name_sums(metric, wanted),
                lambda view: view.column_aggregate_by_name(kind=kind,
                                                           metric=metric))
            totals: Dict[str, float] = {}
            for rows in per_run.values():
                for name, value in rows.items():
                    totals[name] = totals.get(name, 0.0) + value
            self._aggregate_cache[key] = totals
            self._stamp()
            return dict(totals)

    def name_states(self, kind: Optional[FrameKind] = None,
                    metric: str = M.METRIC_GPU_TIME) -> Dict[str, Tuple]:
        """Fleet-wide per-name Welford states for one metric and kind.

        ``name → (count, sum, min, max, mean, m2)``, folded across runs in
        run order with the same merge arithmetic the CCT's parallel Welford
        uses — what the index-served drift scans
        (:func:`repro.fleet.differential.name_drift`) consume.  Indexed runs
        contribute their summary rows; fallback runs recompute the identical
        states from their sealed column blocks.
        """
        with TELEMETRY.span("fleet.query.name_states", metric=metric,
                            kind=kind.name if kind is not None else ""):
            self._ensure_fresh()
            key = ("states", kind, metric)
            cached = self._aggregate_cache.get(key)
            if cached is not None:
                return dict(cached)
            wanted = KIND_CODES[kind] if kind is not None else ALL_KINDS
            per_run = self._per_run(
                ("name_states", metric),
                lambda summary: summary.states.get(metric, {}),
                lambda view: view.column_name_states(metric))
            totals: Dict[Tuple[int, str], Tuple] = {}
            for states in per_run.values():
                for (kind_code, name), state in states.items():
                    if kind_code != wanted:
                        continue
                    accumulate_name_state(totals, (kind_code, name), *state)
            result = {name: state
                      for (_code, name), state in totals.items()}
            self._aggregate_cache[key] = result
            self._stamp()
            return dict(result)

    def top_kernels(self, k: int = 10,
                    metric: str = M.METRIC_GPU_TIME) -> List[Dict[str, object]]:
        """The fleet's ``k`` most expensive kernels (no tree is ever built).

        Mirrors ``ProfileDatabase.top_kernels`` — name, total, fraction of
        the fleet-wide total — but aggregated across every run; over a fully
        indexed store this reads index rows only.
        """
        with TELEMETRY.span("fleet.query.top_kernels", k=k, metric=metric):
            totals = self.aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                            metric=metric)
            ranked = sorted(totals.items(), key=lambda item: -item[1])[:k]
            fleet_total = self.total_metric(metric) or 1.0
            return [{"kernel": name, metric: value,
                     "fraction": value / fleet_total}
                    for name, value in ranked]

    # -- the fleet CCT ------------------------------------------------------------------

    def merged_tree(self) -> CallingContextTree:
        """The fleet-wide CCT: every run's shards unioned into one tree.

        Structure needs bytes, so index-served runs open their views here
        (on demand; an unopenable run demotes).  Hydration and merge cost
        are paid once and cached (until an underlying view moves — see
        ``_ensure_fresh``); runs merge in run order and, within a run, shard
        order — the same sequence a single profile containing all the shards
        would merge in, so the result is bit-for-bit the tree that
        profile's merged view would serve.
        """
        self._ensure_fresh()
        if self._merged is None:
            # Open and hydrate first (demoting runs whose blocks turn out
            # corrupt), then merge only fully-decoded trees: a run must
            # never contribute half its shards to the fleet CCT.
            with TELEMETRY.span("fleet.query.merged_tree",
                                runs=len(self._sources)):
                tasks: List[Tuple[str, Callable]] = []
                for source in list(self._sources.values()):
                    view = self._ensure_view(source)
                    if view is not None:
                        tasks.append((source.run_id,
                                      (lambda v=view: v.hydrate())))
                hydrated_trees = self._gather(tasks)
                combined = CallingContextTree(self.program_name)
                combined.is_merged_view = True
                for run_id in list(self._sources):
                    hydrated = hydrated_trees.get(run_id)
                    if hydrated is None:
                        continue
                    if isinstance(hydrated, ShardedCallingContextTree):
                        for shard in hydrated.shards().values():
                            combined.merge_from(shard)
                    else:
                        combined.merge_from(hydrated)
                self._merged = combined
                self._stamp()
        return self._merged

    def merged(self) -> CallingContextTree:
        """Alias so the aggregator plugs into tree-likes' query surfaces."""
        return self.merged_tree()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FleetAggregator(runs={len(self._sources)}, "
                f"indexed={len(self.indexed_run_ids)}, "
                f"merged={self._merged is not None})")
