"""Capture of *user-level* Python frames.

DeepContext obtains the Python part of the unified call path through CPython's
``PyFrame`` APIs.  In this reproduction the model code, the workloads and the
examples are ordinary Python, so the interpreter stack is real; what needs
care is filtering out the frames that belong to the simulated framework,
profiler and substrate internals — those correspond to C++ code in the real
stack and are represented by the simulated *native* call path instead.

Frames from ``repro.workloads``, ``examples``, ``tests`` and any user script
are considered user code; frames from the rest of the ``repro`` package are
internal and filtered out.
"""

from __future__ import annotations

import os
import sys
from typing import List, Tuple

#: (file, line, function) — the same frame triple used throughout the package.
PyFrame = Tuple[str, int, str]

_PACKAGE_DIR = os.path.dirname(os.path.abspath(__file__))
_USER_SUBPACKAGES = (os.path.join(_PACKAGE_DIR, "workloads"),)


def is_user_frame(filename: str) -> bool:
    """True when a Python frame belongs to user-level code.

    Everything outside the ``repro`` package is user code; inside the package
    only the workload models count (they stand in for the user's model code).
    """
    path = os.path.abspath(filename)
    if not path.startswith(_PACKAGE_DIR):
        return True
    return any(path.startswith(prefix) for prefix in _USER_SUBPACKAGES)


def capture_user_frames(skip: int = 1, limit: int = 128) -> List[PyFrame]:
    """Walk the live interpreter stack and keep only user frames.

    Returns frames ordered from the outermost caller to the innermost callee,
    which is the order call paths are stored in throughout the repository.
    """
    frames: List[PyFrame] = []
    frame = sys._getframe(skip)
    depth = 0
    while frame is not None and depth < limit:
        code = frame.f_code
        if is_user_frame(code.co_filename):
            frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
        depth += 1
    frames.reverse()
    return frames


def format_frame(frame: PyFrame) -> str:
    """Human-readable ``function (file:line)`` rendering of a frame triple."""
    filename, line, function = frame
    return f"{function} ({os.path.basename(filename)}:{line})"
