"""Reproduction of *DeepContext* (ASPLOS 2025).

A context-aware, cross-platform, cross-framework profiler for deep-learning
workloads, rebuilt on fully simulated substrates (mini framework, analytic GPU
model, virtual CPU clocks) so the complete system -- DLMonitor, the calling
context tree profiler, the automated performance analyzer and the flame-graph
GUI -- runs and is testable on a laptop with no GPUs.

Public entry points:

* :class:`repro.core.DeepContextProfiler` -- the profiler itself.
* :mod:`repro.dlmonitor` -- the framework/GPU interception shim.
* :mod:`repro.analyzer` -- the automated performance analyses.
* :mod:`repro.gui` -- flame-graph construction and exporters.
* :mod:`repro.workloads` -- the AlgoPerf-style evaluation workloads.
* :mod:`repro.experiments` -- drivers regenerating every table and figure.
* :mod:`repro.fleet` -- multi-run profile store, cross-run aggregation and
  differential/regression queries.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
