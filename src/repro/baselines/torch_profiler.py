"""A PyTorch-profiler-like baseline: trace every operator and kernel.

The baseline intercepts the same sources as DeepContext (framework callbacks
and GPU activity records) but stores each occurrence as an individual trace
event, so its memory footprint grows with the number of iterations.  Feature
flags mirror the PyTorch-profiler row of Table 1.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional

from ..framework.eager import CallbackInfo, EagerEngine, PHASE_AFTER, PHASE_BEFORE
from ..gpu.activity import ActivityKind, ActivityRecord
from .trace import TraceBuffer, TraceEvent


class TorchProfilerBaseline:
    """Trace-based framework profiler (the "PyTorch profiler" comparator)."""

    name = "pytorch_profiler"
    #: Table 1 feature row.
    features = {
        "python_context": True,
        "framework_context": True,
        "cpp_context": False,
        "device_context": False,
        "cross_gpus": True,
        "cross_frameworks": False,
        "cpu_profiling": True,
    }

    def __init__(self, engine: EagerEngine,
                 memory_limit_bytes: Optional[int] = None) -> None:
        self.engine = engine
        self.buffer = TraceBuffer(memory_limit_bytes=memory_limit_bytes)
        self._running = False
        self._open_ops: List[TraceEvent] = []

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "TorchProfilerBaseline":
        if self._running:
            return self
        self.engine.add_global_callback(self._on_op)
        self.engine.runtime.activity.register_callback(self._on_activity)
        self._running = True
        return self

    def stop(self) -> TraceBuffer:
        if not self._running:
            return self.buffer
        self.engine.runtime.activity.flush()
        self.engine.remove_global_callback(self._on_op)
        self.engine.runtime.activity.unregister()
        self._running = False
        return self.buffer

    @contextlib.contextmanager
    def profile(self):
        self.start()
        try:
            yield self
        finally:
            self.stop()

    # -- event recording --------------------------------------------------------------

    def _on_op(self, info: CallbackInfo) -> None:
        timestamp_us = info.thread.cpu_clock.now * 1e6
        if info.phase == PHASE_BEFORE:
            self.buffer.append(TraceEvent(
                name=info.op_name,
                category="cpu_op",
                phase="B",
                timestamp_us=timestamp_us,
                tid=info.thread.tid,
                args={"sequence_id": info.sequence_id or 0,
                      "backward": info.is_backward,
                      "scope": "/".join(info.scope)},
            ))
        elif info.phase == PHASE_AFTER:
            self.buffer.append(TraceEvent(
                name=info.op_name,
                category="cpu_op",
                phase="E",
                timestamp_us=timestamp_us,
                tid=info.thread.tid,
            ))

    def _on_activity(self, records: List[ActivityRecord]) -> None:
        for record in records:
            if record.kind not in (ActivityKind.KERNEL, ActivityKind.MEMCPY):
                continue
            self.buffer.append(TraceEvent(
                name=record.name,
                category="kernel" if record.kind == ActivityKind.KERNEL else "gpu_memcpy",
                phase="X",
                timestamp_us=record.start * 1e6,
                duration_us=record.duration * 1e6,
                tid=record.stream,
                pid=2,
                args={"correlation": record.correlation_id,
                      "grid": record.grid_size,
                      "block": record.block_size},
            ))

    # -- results --------------------------------------------------------------------------

    @property
    def num_events(self) -> int:
        return len(self.buffer)

    def memory_bytes(self) -> int:
        return self.buffer.size_bytes

    def export(self, path: str) -> str:
        return self.buffer.export(path)
