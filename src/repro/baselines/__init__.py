"""Baseline (trace-based) profilers used as comparators in the evaluation."""

from .jax_profiler import JaxProfilerBaseline, baseline_for
from .torch_profiler import TorchProfilerBaseline
from .trace import TraceBuffer, TraceEvent

__all__ = [
    "TraceEvent",
    "TraceBuffer",
    "TorchProfilerBaseline",
    "JaxProfilerBaseline",
    "baseline_for",
]
