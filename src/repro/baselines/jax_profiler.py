"""A JAX-profiler-like baseline.

Shares the trace-everything design of the PyTorch-profiler baseline but, as in
Table 1, it records only Python-level/XLA-level names without deep-learning
framework context (no operator/scope attribution), and it works for the JIT
execution mode only.
"""

from __future__ import annotations

from ..framework.eager import CallbackInfo, EagerEngine, PHASE_BEFORE
from .torch_profiler import TorchProfilerBaseline
from .trace import TraceEvent


class JaxProfilerBaseline(TorchProfilerBaseline):
    """Trace-based profiler for the JIT (JAX-like) execution mode."""

    name = "jax_profiler"
    features = {
        "python_context": True,
        "framework_context": False,
        "cpp_context": False,
        "device_context": False,
        "cross_gpus": True,
        "cross_frameworks": False,
        "cpu_profiling": True,
    }

    def _on_op(self, info: CallbackInfo) -> None:
        # The JAX profiler sees XLA executables, not framework operators: it
        # records the runtime name only, without scope or sequence metadata.
        timestamp_us = info.thread.cpu_clock.now * 1e6
        if info.phase == PHASE_BEFORE:
            self.buffer.append(TraceEvent(
                name=info.op_name,
                category="xla_op",
                phase="B",
                timestamp_us=timestamp_us,
                tid=info.thread.tid,
            ))
        else:
            self.buffer.append(TraceEvent(
                name=info.op_name,
                category="xla_op",
                phase="E",
                timestamp_us=timestamp_us,
                tid=info.thread.tid,
            ))


def baseline_for(engine: EagerEngine, execution_mode: str = "eager",
                 memory_limit_bytes=None) -> TorchProfilerBaseline:
    """The framework profiler a user of ``execution_mode`` would reach for."""
    if execution_mode == "jit":
        return JaxProfilerBaseline(engine, memory_limit_bytes=memory_limit_bytes)
    return TorchProfilerBaseline(engine, memory_limit_bytes=memory_limit_bytes)
