"""Trace-event model shared by the baseline (trace-based) profilers.

The PyTorch and JAX profilers record *every* CPU operation and GPU activity as
an individual event and keep the whole trace in memory until it is exported.
This is the design whose memory footprint grows linearly with iteration count
— the behaviour Figure 6(c,d) contrasts with DeepContext's online aggregation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Approximate in-memory footprint of one trace event (object, strings, dict).
EVENT_BASE_BYTES = 320
#: Extra bytes per argument key/value pair.
EVENT_ARG_BYTES = 48


@dataclass
class TraceEvent:
    """One Chrome-trace-format event (``ph``: B/E/X/i)."""

    name: str
    category: str
    phase: str
    timestamp_us: float
    duration_us: float = 0.0
    pid: int = 1
    tid: int = 1
    args: Dict[str, object] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, object]:
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.timestamp_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.phase == "X":
            event["dur"] = self.duration_us
        if self.args:
            event["args"] = self.args
        return event

    def approximate_size_bytes(self) -> int:
        return EVENT_BASE_BYTES + len(self.name) + EVENT_ARG_BYTES * len(self.args)


class TraceBuffer:
    """An append-only buffer of trace events (never aggregated)."""

    def __init__(self, memory_limit_bytes: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.memory_limit_bytes = memory_limit_bytes
        self._size_bytes = 0
        self.out_of_memory = False

    def append(self, event: TraceEvent) -> None:
        """Record one event; sets ``out_of_memory`` when the limit is exceeded."""
        self.events.append(event)
        self._size_bytes += event.approximate_size_bytes()
        if (self.memory_limit_bytes is not None
                and self._size_bytes > self.memory_limit_bytes):
            self.out_of_memory = True

    def __len__(self) -> int:
        return len(self.events)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def to_chrome_trace(self) -> Dict[str, object]:
        return {"traceEvents": [event.to_chrome() for event in self.events],
                "displayTimeUnit": "ms"}

    def export(self, path: str) -> str:
        """Write the Chrome trace to disk.

        Raises :class:`MemoryError` when the buffer exceeded its memory limit,
        reproducing the PyTorch-profiler out-of-memory failure reported in the
        paper's evaluation.
        """
        if self.out_of_memory:
            raise MemoryError(
                "trace buffer exceeded its memory limit while exporting the profile")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle)
        return path
