"""Flame-graph models: top-down and bottom-up views of the CCT.

The GUI (paper §4.4) renders the calling context tree as flame graphs with two
switchable views: the top-down view is a direct rendering of the CCT, while
the bottom-up view aggregates the metrics of identical frames across different
call paths (so "which kernel is expensive, regardless of who called it" is one
row).  Hotspot call paths are highlighted and issues flagged by the analyzer
are colour-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..analyzer.issues import Issue
from ..core import metrics as M
from ..core.cct import CallingContextTree, CCTNode, ShardedCallingContextTree
from ..core.storage import LazyProfileView
from ..dlmonitor.callpath import FrameKind

#: Anything the builders accept: an eager tree, a sharded tree, or a lazily
#: decoded profile view — all serve the same read API (``root``,
#: ``nodes_of_kind``, ``all_nodes``); the latter two materialize their merged
#: union on first structural access.
TreeLike = Union[CallingContextTree, ShardedCallingContextTree, LazyProfileView]


@dataclass
class FlameNode:
    """One box of a flame graph."""

    label: str
    kind: str
    value: float
    self_value: float = 0.0
    children: List["FlameNode"] = field(default_factory=list)
    #: Fraction of the root value (set by ``finalize``).
    fraction: float = 0.0
    #: True when the hotspot analysis highlighted this frame's call path.
    highlighted: bool = False
    #: Issue messages attached by the analyzer (colour-coded in the GUI).
    issues: List[str] = field(default_factory=list)
    source: Tuple[str, int] = ("", 0)

    def walk(self) -> Iterator["FlameNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def depth_count(self) -> int:
        return 1 + max((child.depth_count for child in self.children), default=0)

    def find(self, label_substring: str) -> List["FlameNode"]:
        return [node for node in self.walk() if label_substring in node.label]


@dataclass
class FlameGraph:
    """A complete flame graph (either view)."""

    root: FlameNode
    view: str  # "top_down" or "bottom_up"
    metric: str

    def finalize(self) -> "FlameGraph":
        total = self.root.value or 1.0
        for node in self.root.walk():
            node.fraction = node.value / total
        return self

    @property
    def total(self) -> float:
        return self.root.value

    def node_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    def hottest_path(self) -> List[FlameNode]:
        """Follow the heaviest child from the root down to a leaf."""
        path = [self.root]
        node = self.root
        while node.children:
            node = max(node.children, key=lambda child: child.value)
            path.append(node)
        return path


class FlameGraphBuilder:
    """Builds top-down and bottom-up flame graphs from a CCT."""

    def __init__(self, metric: str = M.METRIC_GPU_TIME,
                 hotspot_threshold: float = 0.10) -> None:
        self.metric = metric
        self.hotspot_threshold = hotspot_threshold

    # -- top-down --------------------------------------------------------------------

    def top_down(self, tree: TreeLike,
                 issues: Optional[List[Issue]] = None) -> FlameGraph:
        """Direct rendering of the calling context tree."""
        issue_map = self._issues_by_node(issues)
        total = tree.root.inclusive.sum(self.metric) or 1.0

        def convert(node: CCTNode) -> FlameNode:
            value = node.inclusive.sum(self.metric)
            flame = FlameNode(
                label=node.frame.label(),
                kind=node.kind.value,
                value=value,
                self_value=node.exclusive.sum(self.metric),
                highlighted=value / total > self.hotspot_threshold,
                issues=issue_map.get(node.node_id, []),
                source=(node.frame.file, node.frame.line),
            )
            children = sorted(node.children.values(),
                              key=lambda child: -child.inclusive.sum(self.metric))
            flame.children = [convert(child) for child in children
                              if child.inclusive.sum(self.metric) > 0 or child.children]
            return flame

        return FlameGraph(root=convert(tree.root), view="top_down", metric=self.metric).finalize()

    # -- bottom-up ----------------------------------------------------------------------

    def bottom_up(self, tree: TreeLike,
                  kind: Optional[FrameKind] = FrameKind.GPU_KERNEL,
                  issues: Optional[List[Issue]] = None) -> FlameGraph:
        """Aggregate identical frames across call paths, callers underneath.

        The first level contains each distinct frame (by default GPU kernels)
        with its metric summed over every context; below each entry the callers
        are expanded so users can see where the aggregate cost comes from.
        """
        issue_map = self._issues_by_label(issues)
        root = FlameNode(label="<all>", kind="root", value=0.0)
        groups: Dict[str, FlameNode] = {}
        nodes = tree.nodes_of_kind(kind) if kind is not None else tree.all_nodes()
        for node in nodes:
            value = node.exclusive.sum(self.metric)
            if value <= 0:
                continue
            label = node.frame.label()
            group = groups.get(label)
            if group is None:
                group = FlameNode(label=label, kind=node.kind.value, value=0.0,
                                  issues=issue_map.get(label, []))
                groups[label] = group
                root.children.append(group)
            group.value += value
            group.self_value += value
            root.value += value
            self._append_caller_chain(group, node, value)
        root.children.sort(key=lambda child: -child.value)
        total = root.value or 1.0
        for child in root.children:
            child.highlighted = child.value / total > self.hotspot_threshold
        return FlameGraph(root=root, view="bottom_up", metric=self.metric).finalize()

    # -- helpers --------------------------------------------------------------------------

    @staticmethod
    def _append_caller_chain(group: FlameNode, node: CCTNode, value: float) -> None:
        """Add the caller chain (leaf's parent upwards) below a bottom-up entry."""
        current = group
        ancestor = node.parent
        depth = 0
        while ancestor is not None and ancestor.parent is not None and depth < 32:
            label = ancestor.frame.label()
            child = next((c for c in current.children if c.label == label), None)
            if child is None:
                child = FlameNode(label=label, kind=ancestor.kind.value, value=0.0)
                current.children.append(child)
            child.value += value
            current = child
            ancestor = ancestor.parent
            depth += 1

    @staticmethod
    def _issues_by_node(issues: Optional[List[Issue]]) -> Dict[int, List[str]]:
        result: Dict[int, List[str]] = {}
        for issue in issues or []:
            if issue.node is not None:
                result.setdefault(issue.node.node_id, []).append(issue.message)
        return result

    @staticmethod
    def _issues_by_label(issues: Optional[List[Issue]]) -> Dict[str, List[str]]:
        result: Dict[str, List[str]] = {}
        for issue in issues or []:
            if issue.node is not None:
                result.setdefault(issue.node.frame.label(), []).append(issue.message)
        return result
