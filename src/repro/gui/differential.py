"""Differential flame graphs: the candidate run coloured by its deltas.

The differential view renders the *candidate* run's top-down flame graph, but
every box carries the baseline's inclusive value for the same calling context
and is coloured on the diverging :func:`~repro.gui.color.delta_color` scale —
regressions deepen toward red, improvements toward blue, unchanged frames
stay near-white — so "where did the time move" is one glance, the way the
heat scale makes "where does the time go" one glance on a single run.

Contexts that vanished from the candidate are kept as zero-width markers
(value 0, the baseline subtree preserved recursively) so the export still
accounts for every second the baseline spent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.cct import CCTNode
from ..fleet.differential import (STATUS_CHANGED, STATUS_NEW, STATUS_UNCHANGED,
                                  STATUS_VANISHED, DifferentialProfile)
from .color import delta_color
from .flamegraph import FlameGraph, FlameNode


@dataclass
class DeltaFlameNode(FlameNode):
    """One box of a differential flame graph (candidate-shaped, delta-aware)."""

    #: The baseline's inclusive value for this calling context (0 when new).
    baseline_value: float = 0.0
    #: Inclusive candidate − baseline for this context.
    delta: float = 0.0
    status: str = STATUS_UNCHANGED
    #: Diverging colour on the improvement→neutral→regression scale.
    color: str = ""


class DifferentialFlameGraphBuilder:
    """Builds the candidate-shaped, delta-coloured top-down flame graph.

    ``hot_fraction`` anchors the colour scale: a context whose inclusive
    delta reaches that fraction of the bigger run's total saturates the
    diverging palette (the same role the heat scale's total plays on single
    runs).
    """

    def __init__(self, hot_fraction: float = 0.25) -> None:
        self.hot_fraction = hot_fraction

    def build(self, diff: DifferentialProfile) -> FlameGraph:
        metric = diff.metric
        baseline_root = diff.baseline_tree.root
        candidate_root = diff.candidate_tree.root
        total = max(baseline_root.inclusive.sum(metric),
                    candidate_root.inclusive.sum(metric)) or 1.0
        scale = (self.hot_fraction * total) or 1.0

        def paint(node: DeltaFlameNode) -> DeltaFlameNode:
            node.color = delta_color(node.delta / scale)
            return node

        def convert(cnode: CCTNode, bnode: Optional[CCTNode],
                    is_root: bool = False) -> DeltaFlameNode:
            value = cnode.inclusive.sum(metric)
            baseline_value = bnode.inclusive.sum(metric) if bnode is not None else 0.0
            delta = value - baseline_value
            if is_root or bnode is not None:
                status = STATUS_UNCHANGED if delta == 0.0 else STATUS_CHANGED
            else:
                status = STATUS_NEW
            flame = paint(DeltaFlameNode(
                label=cnode.frame.label(), kind=cnode.kind.value, value=value,
                self_value=cnode.exclusive.sum(metric),
                baseline_value=baseline_value, delta=delta, status=status,
                source=(cnode.frame.file, cnode.frame.line)))
            children = sorted(cnode.children.values(),
                              key=lambda child: -child.inclusive.sum(metric))
            for child in children:
                bchild = (bnode.children.get(child.frame.identity())
                          if bnode is not None else None)
                if (child.inclusive.sum(metric) > 0 or child.children
                        or bchild is not None):
                    flame.children.append(convert(child, bchild))
            if bnode is not None:
                matched = set(cnode.children)
                for key, bchild in bnode.children.items():
                    if key not in matched:
                        flame.children.append(self._vanished(bchild, metric,
                                                             paint))
            return flame

        root = convert(candidate_root, baseline_root, is_root=True)
        return FlameGraph(root=root, view="differential",
                          metric=metric).finalize()

    def _vanished(self, bnode: CCTNode, metric: str, paint) -> DeltaFlameNode:
        """Zero-width markers for a baseline subtree the candidate lost.

        The whole subtree is kept (recursively, every box at value 0) so a
        vanished kernel is still findable under its vanished callers.
        """
        baseline_value = bnode.inclusive.sum(metric)
        flame = paint(DeltaFlameNode(
            label=bnode.frame.label(), kind=bnode.kind.value, value=0.0,
            baseline_value=baseline_value, delta=-baseline_value,
            status=STATUS_VANISHED,
            source=(bnode.frame.file, bnode.frame.line)))
        for child in bnode.children.values():
            flame.children.append(self._vanished(child, metric, paint))
        return flame


def differential_flamegraph(baseline, candidate=None,
                            metric: Optional[str] = None,
                            hot_fraction: float = 0.25) -> FlameGraph:
    """Delta-coloured flame graph of ``candidate`` against ``baseline``.

    Pass an already-built :class:`DifferentialProfile` as the only argument,
    or two profile-shaped inputs (trees, lazy views, databases) plus an
    optional ``metric``.
    """
    if isinstance(baseline, DifferentialProfile):
        diff = baseline
    else:
        if candidate is None:
            raise TypeError("differential_flamegraph needs a candidate "
                            "profile (or a prebuilt DifferentialProfile)")
        kwargs = {} if metric is None else {"metric": metric}
        diff = DifferentialProfile(baseline, candidate, **kwargs)
    return DifferentialFlameGraphBuilder(hot_fraction=hot_fraction).build(diff)


def differential_to_dict(graph: FlameGraph) -> Dict:
    """Plain-dict export of a differential flame graph (delta fields kept)."""

    def encode(node: FlameNode) -> Dict:
        entry = {
            "name": node.label,
            "value": node.value,
            "self": node.self_value,
            "kind": node.kind,
            "baseline": getattr(node, "baseline_value", node.value),
            "delta": getattr(node, "delta", 0.0),
            "status": getattr(node, "status", STATUS_UNCHANGED),
            "color": getattr(node, "color", ""),
            "children": [encode(child) for child in node.children],
        }
        return entry

    return {"view": graph.view, "metric": graph.metric,
            "root": encode(graph.root)}


def differential_to_json(graph: FlameGraph, indent: int = 0) -> str:
    return json.dumps(differential_to_dict(graph), indent=indent or None)


def save_differential_json(graph: FlameGraph, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(differential_to_json(graph, indent=2))
    return path
