"""JSON exporters: speedscope-style flame graphs and Chrome trace events.

These exports make profiles consumable by existing viewers (speedscope,
``chrome://tracing``) in addition to the bundled HTML/SVG renderers, and they
give tests a structural format to assert against.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .flamegraph import FlameGraph, FlameNode


def flamegraph_to_dict(graph: FlameGraph) -> Dict:
    """A plain-dict rendering of a flame graph (d3-flame-graph compatible)."""

    def encode(node: FlameNode) -> Dict:
        return {
            "name": node.label,
            "value": node.value,
            "self": node.self_value,
            "kind": node.kind,
            "highlighted": node.highlighted,
            "issues": list(node.issues),
            "children": [encode(child) for child in node.children],
        }

    return {"view": graph.view, "metric": graph.metric, "root": encode(graph.root)}


def flamegraph_to_json(graph: FlameGraph, indent: int = 0) -> str:
    return json.dumps(flamegraph_to_dict(graph), indent=indent or None)


def flamegraph_to_folded(graph: FlameGraph) -> str:
    """Brendan-Gregg "folded stacks" format (one ``a;b;c value`` line per leaf)."""
    lines: List[str] = []

    def walk(node: FlameNode, prefix: List[str]) -> None:
        path = prefix + [node.label]
        if not node.children:
            # Fixed-point with 12 decimals: %.9f truncated sub-microsecond
            # values badly enough to break totals, while %g-style scientific
            # notation would break external folded-format parsers
            # (flamegraph.pl expects a plain decimal trailer).
            lines.append(";".join(path) + f" {node.value:.12f}")
            return
        if node.self_value > 0:
            lines.append(";".join(path) + f" {node.self_value:.12f}")
        for child in node.children:
            walk(child, path)

    walk(graph.root, [])
    return "\n".join(lines) + "\n"


def flamegraph_to_speedscope(graph: FlameGraph, name: str = "deepcontext") -> Dict:
    """A speedscope-compatible document built from the flame graph."""
    frames: List[Dict] = []
    frame_index: Dict[str, int] = {}

    def frame_id(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    events: List[Dict] = []
    clock = [0.0]

    def emit(node: FlameNode) -> None:
        fid = frame_id(node.label)
        start = clock[0]
        events.append({"type": "O", "frame": fid, "at": start})
        child_total = sum(child.value for child in node.children)
        for child in node.children:
            emit(child)
        clock[0] = start + max(node.value, child_total)
        events.append({"type": "C", "frame": fid, "at": clock[0]})

    emit(graph.root)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "seconds",
            "startValue": 0.0,
            "endValue": clock[0],
            "events": events,
        }],
        "exporter": "deepcontext-repro",
        "name": name,
    }


def chrome_trace_events(events: List[Dict]) -> str:
    """Serialise pre-built Chrome trace events (used by the baseline profilers)."""
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
