"""Colour coding for flame-graph frames and analyzer issues.

The GUI uses two colour systems: a heat scale ("the thicker the colour of a
frame, the more time has been spent on that frame", Figure 1) and a
severity-based palette for frames the analyzer flagged.
"""

from __future__ import annotations

from typing import Tuple

from ..analyzer.issues import Severity

# Frame-kind base colours (hex RGB), loosely matching common flame-graph tools.
KIND_COLORS = {
    "python": "#4e79a7",
    "framework": "#f28e2b",
    "native": "#59a14f",
    "gpu_api": "#b07aa1",
    "gpu_kernel": "#e15759",
    "gpu_instruction": "#ff9da7",
    "thread": "#9c755f",
    "root": "#bab0ac",
}

SEVERITY_COLORS = {
    Severity.INFO: "#76b7b2",
    Severity.WARNING: "#edc948",
    Severity.CRITICAL: "#e15759",
}

_HEAT_COLD = (255, 236, 200)
_HEAT_HOT = (215, 48, 39)

# Diverging scale for differential views: regressions (candidate slower than
# baseline) deepen toward the heat scale's hot red, improvements toward blue,
# unchanged frames stay near-white so the deltas carry the picture.
_DELTA_IMPROVED = (69, 117, 180)
_DELTA_NEUTRAL = (247, 247, 247)
_DELTA_REGRESSED = (215, 48, 39)


def _lerp(a: int, b: int, t: float) -> int:
    return int(round(a + (b - a) * t))


def heat_color(fraction: float) -> str:
    """Hex colour on the cold→hot scale for a frame's share of total time."""
    t = min(1.0, max(0.0, fraction))
    rgb = tuple(_lerp(c, h, t) for c, h in zip(_HEAT_COLD, _HEAT_HOT))
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def delta_color(t: float) -> str:
    """Hex colour on the diverging improvement→neutral→regression scale.

    ``t`` is a signed, normalised delta in [-1, 1]: +1 saturates regression
    red, -1 improvement blue, 0 is the neutral near-white.  Values outside
    the range clamp.
    """
    t = min(1.0, max(-1.0, t))
    target = _DELTA_REGRESSED if t >= 0 else _DELTA_IMPROVED
    rgb = tuple(_lerp(n, h, abs(t)) for n, h in zip(_DELTA_NEUTRAL, target))
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def kind_color(kind: str) -> str:
    """Base colour of a frame kind."""
    return KIND_COLORS.get(kind, "#bab0ac")


def severity_color(severity: Severity) -> str:
    return SEVERITY_COLORS.get(severity, SEVERITY_COLORS[Severity.WARNING])


def frame_color(kind: str, fraction: float, has_issue: bool = False,
                severity: Severity = Severity.WARNING) -> str:
    """The colour the GUI paints one flame-graph box.

    Issue-flagged frames use the severity palette so they stand out; otherwise
    hot frames use the heat scale and cool frames keep their kind colour.
    """
    if has_issue:
        return severity_color(severity)
    if fraction >= 0.05:
        return heat_color(fraction)
    return kind_color(kind)


def hex_to_rgb(color: str) -> Tuple[int, int, int]:
    color = color.lstrip("#")
    return tuple(int(color[i:i + 2], 16) for i in (0, 2, 4))  # type: ignore[return-value]
