"""Standalone SVG flame-graph rendering.

The real GUI renders with WebGL inside a VS Code WebView; for a dependency-free
reproduction an SVG is the closest equivalent that can still be opened in any
browser and inspected in tests (every frame becomes one ``<rect>`` with a
``<title>`` tooltip).
"""

from __future__ import annotations

from typing import List
from xml.sax.saxutils import escape

from .color import frame_color
from .flamegraph import FlameGraph, FlameNode

_ROW_HEIGHT = 18
_MIN_WIDTH_PX = 0.5
_FONT_SIZE = 11


def render_svg(graph: FlameGraph, width: int = 1200, title: str = "") -> str:
    """Render a flame graph into a self-contained SVG document."""
    depth = graph.root.depth_count
    height = (depth + 2) * _ROW_HEIGHT
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="monospace" font-size="{_FONT_SIZE}">',
        f'<text x="4" y="{_ROW_HEIGHT - 5}" font-weight="bold">'
        f'{escape(title or f"DeepContext {graph.view} view ({graph.metric})")}</text>',
    ]
    total = graph.root.value or 1.0

    def emit(node: FlameNode, x: float, level: int, available: float) -> None:
        node_width = available * (node.value / total) if total else 0.0
        if node_width < _MIN_WIDTH_PX:
            return
        y = (level + 1) * _ROW_HEIGHT
        color = frame_color(node.kind, node.fraction, has_issue=bool(node.issues))
        tooltip = f"{node.label}: {node.value:.6f} ({node.fraction:.1%})"
        if node.issues:
            tooltip += " | " + "; ".join(node.issues)
        parts.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{node_width:.2f}" height="{_ROW_HEIGHT - 1}" '
            f'fill="{color}" stroke="#ffffff" stroke-width="0.4">'
            f'<title>{escape(tooltip)}</title></rect>'
        )
        if node_width > 40:
            label = node.label if len(node.label) * 7 < node_width else node.label[: int(node_width // 7)] + "…"
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + _ROW_HEIGHT - 5}" fill="#1a1a1a">{escape(label)}</text>'
            )
        parts.append("</g>")
        child_x = x
        for child in node.children:
            child_width = available * (child.value / total) if total else 0.0
            emit(child, child_x, level + 1, available)
            child_x += child_width

    emit(graph.root, 0.0, 0, float(width))
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(graph: FlameGraph, path: str, width: int = 1200, title: str = "") -> str:
    """Render and write the SVG to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(graph, width=width, title=title))
    return path
