"""IDE interaction: translating visualization events into editor actions.

In the real tool a WebView click is turned into VS Code commands ("open this
file, go to this line, highlight the range").  The reproduction keeps that
translation layer — visualization events in, structured editor actions out —
so its logic (source resolution through frames, fused-operator expansion via
the fusion map) is fully testable without an editor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.cct import CCTNode
from ..dlmonitor.callpath import FrameKind
from ..dlmonitor.fusion_map import FusionMap


@dataclass(frozen=True)
class EditorAction:
    """One action the IDE should perform in response to a GUI event."""

    command: str            # "open_file", "reveal_line", "highlight_range", "show_message"
    file: str = ""
    line: int = 0
    end_line: int = 0
    message: str = ""


@dataclass
class VisualizationEvent:
    """A user interaction inside the WebView (click / hover on a frame)."""

    kind: str               # "click" or "hover"
    node: Optional[CCTNode] = None
    label: str = ""


@dataclass
class IdeBridge:
    """Translates visualization events into editor actions."""

    fusion_map: Optional[FusionMap] = None
    actions_log: List[EditorAction] = field(default_factory=list)

    def handle(self, event: VisualizationEvent) -> List[EditorAction]:
        """Produce the editor actions for one visualization event."""
        actions = self._translate(event)
        self.actions_log.extend(actions)
        return actions

    # -- translation rules -------------------------------------------------------------

    def _translate(self, event: VisualizationEvent) -> List[EditorAction]:
        node = event.node
        if node is None:
            return [EditorAction(command="show_message", message=f"No source for {event.label}")]

        if node.kind == FrameKind.PYTHON and node.frame.file:
            return [
                EditorAction(command="open_file", file=node.frame.file, line=node.frame.line),
                EditorAction(command="reveal_line", file=node.frame.file, line=node.frame.line),
                EditorAction(command="highlight_range", file=node.frame.file,
                             line=node.frame.line, end_line=node.frame.line),
            ]

        # Fused JIT operators: offer every original call site recorded at compile time.
        if (self.fusion_map is not None and node.kind == FrameKind.FRAMEWORK
                and node.frame.name in self.fusion_map):
            actions: List[EditorAction] = []
            for callpath in self.fusion_map.original_callpaths(node.frame.name):
                if callpath:
                    file, line, _function = callpath[-1]
                    actions.append(EditorAction(command="open_file", file=file, line=line))
            if actions:
                return actions

        # Non-Python frames: walk up to the nearest Python ancestor.
        for ancestor in node.ancestors():
            if ancestor.kind == FrameKind.PYTHON and ancestor.frame.file:
                return [
                    EditorAction(command="open_file", file=ancestor.frame.file,
                                 line=ancestor.frame.line),
                    EditorAction(command="reveal_line", file=ancestor.frame.file,
                                 line=ancestor.frame.line),
                ]
        return [EditorAction(command="show_message",
                             message=f"No source location for {node.frame.label()}")]
