"""Self-refreshing fleet dashboard: one HTML page for a watched fleet.

Renders everything the :class:`~repro.fleet.watcher.FleetWatcher` knows into
a single dependency-free page that a browser re-polls on its own (a
``<meta http-equiv="refresh">`` tag — no JavaScript timers, no server):

* live flame graphs of the in-flight runs the watcher is tailing (each one
  the run's last sealed prefix, rendered via the existing
  :class:`FlameGraphBuilder`/``render_svg`` pipeline);
* sparkline trends computed in Python from the crash-safe health
  time-series (``repro.obs.timeseries``) — no client-side charting;
* store panels — run counts, quarantine inventory, degradation rollup and
  catalog-lock contention — served entirely from the catalog, the fleet
  query index and the always-on lock statistics.  Rendering a dashboard
  over a fully indexed store opens **no** profile files; only live views
  passed in explicitly are touched.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ..core import metrics as M
from .flamegraph import FlameGraphBuilder
from .svg_export import render_svg

#: ``(section, name, label)`` rows the health panel charts by default.
DEFAULT_SPARKLINES: Tuple[Tuple[str, str, str], ...] = (
    ("gauges", "watcher.runs_live", "live runs"),
    ("gauges", "watcher.runs_stalled", "stalled runs"),
    ("gauges", "watcher.last_seal_age_s", "last seal age (s)"),
    ("counters", "watcher.seals_observed", "seals observed"),
    ("counters", "fleet.ingests", "runs ingested"),
    ("counters", "fleet.pruned_runs", "runs pruned"),
)

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<meta http-equiv="refresh" content="{refresh_s}"/>
<title>{title}</title>
<style>
  body {{ font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5rem; color: #1a1a1a; }}
  h1 {{ font-size: 1.3rem; }}
  h2 {{ font-size: 1.05rem; margin-top: 1.6rem; }}
  .meta {{ color: #666; font-size: 0.85rem; }}
  .panel {{ margin-top: 1rem; }}
  .cards {{ display: flex; flex-wrap: wrap; gap: 1rem; }}
  .card {{ border: 1px solid #ddd; border-radius: 6px; padding: 0.6rem 0.9rem; }}
  .card .big {{ font-size: 1.4rem; font-weight: 600; }}
  .stalled {{ color: #e15759; font-weight: 600; }}
  .issue {{ border-left: 4px solid #edc948; padding: 0.3rem 0.6rem; margin: 0.4rem 0; background: #fdf6e3; }}
  .issue.critical {{ border-color: #e15759; background: #fdecea; }}
  table {{ border-collapse: collapse; }}
  td, th {{ border: 1px solid #ddd; padding: 4px 8px; font-size: 0.85rem; text-align: left; }}
  .view {{ margin-top: 0.6rem; overflow-x: auto; }}
  .spark {{ display: inline-block; margin: 0 1rem 0.6rem 0; }}
  .spark .label {{ font-size: 0.8rem; color: #444; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="meta">auto-refreshes every {refresh_s}s — close the tab to stop</p>
{body}
<script type="application/json" id="repro-dashboard-state">{state_json}</script>
</body>
</html>
"""


def _sparkline(points: Sequence[Tuple[float, float]], width: int = 240,
               height: int = 44) -> str:
    """A tiny inline SVG polyline for one metric series ('' when empty)."""
    if not points:
        return ""
    values = [value for _, value in points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    pad = 3.0
    if len(points) == 1:
        coords = [(width / 2.0, height / 2.0)]
    else:
        step = (width - 2 * pad) / (len(points) - 1)
        coords = [(pad + index * step,
                   pad + (height - 2 * pad) * (1.0 - (value - low) / span))
                  for index, (_, value) in enumerate(points)]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    last_x, last_y = coords[-1]
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline points="{path}" fill="none" stroke="#4e79a7" '
            f'stroke-width="1.5"/>'
            f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
            f'fill="#4e79a7"/></svg>')


def _live_panel(live: Iterable, metric: str, top: int) -> Tuple[str, List[Dict]]:
    rows: List[str] = []
    state: List[Dict] = []
    builder = FlameGraphBuilder(metric=metric)
    for run in list(live)[:top]:
        name = escape(getattr(run, "name", "?"))
        nodes = int(getattr(run, "nodes", 0))
        total = float(getattr(run, "metric_total", 0.0))
        stalled = bool(getattr(run, "stalled", False))
        state.append({"name": getattr(run, "name", "?"), "nodes": nodes,
                      "metric_total": total, "stalled": stalled})
        badge = ' <span class="stalled">stalled (serving last sealed ' \
                'prefix)</span>' if stalled else ""
        header = (f"<h3>{name}{badge}</h3><p class=\"meta\">{nodes} node(s), "
                  f"{escape(metric)} total {total:.6g}</p>")
        view = getattr(run, "view", None)
        if view is None:
            rows.append(f'<div class="panel">{header}</div>')
            continue
        try:
            svg = render_svg(builder.top_down(view), title="")
        except Exception as error:  # a torn live file must not kill the page
            rows.append(f'<div class="panel">{header}<p class="stalled">'
                        f'flame graph unavailable: {escape(str(error))}'
                        f'</p></div>')
            continue
        rows.append(f'<div class="panel">{header}'
                    f'<div class="view">{svg}</div></div>')
    if not rows:
        return "<p>No live runs.</p>", state
    return "\n".join(rows), state


def _store_panels(store, metric: str) -> Tuple[str, Dict]:
    # Imported lazily: the gui layer must stay usable without pulling the
    # fleet package in for plain single-profile exports.
    from ..fleet.aggregate import FleetAggregator
    from ..fleet.store import catalog_lock_stats

    parts: List[str] = []
    state: Dict = {}
    records = store.runs()
    by_workload: Dict[str, int] = {}
    for record in records:
        by_workload[record.workload] = by_workload.get(record.workload, 0) + 1
    quarantined = store.quarantined()
    cards = [
        ("runs in store", len(records)),
        ("workloads", len(by_workload)),
        ("quarantined", len(quarantined)),
    ]
    parts.append('<div class="cards">' + "".join(
        f'<div class="card"><div class="big">{value}</div>{escape(label)}'
        f'</div>' for label, value in cards) + "</div>")
    state["runs"] = len(records)
    state["workloads"] = dict(by_workload)

    if by_workload:
        parts.append("<h2>Workloads</h2><table><tr><th>workload</th>"
                     "<th>runs</th><th>latest run</th></tr>")
        for workload in sorted(by_workload):
            latest = store.latest(workload=workload)
            latest_id = latest.run_id if latest is not None else "—"
            parts.append(f"<tr><td>{escape(workload)}</td>"
                         f"<td>{by_workload[workload]}</td>"
                         f"<td>{escape(latest_id)}</td></tr>")
        parts.append("</table>")

    if quarantined:
        parts.append("<h2>Quarantined runs</h2>")
        for record in quarantined:
            parts.append(f'<div class="issue critical">'
                         f'<strong>{escape(record.run_id)}</strong> '
                         f'({escape(record.workload)}) — '
                         f'{escape(record.quarantine_reason)}</div>')

    degradation: Dict = {}
    if records:
        aggregator = FleetAggregator.from_store(store)
        try:
            degradation = aggregator.degradation_report()
        finally:
            aggregator.close()
        counts = dict(degradation.get("counts", {}))
        state["degradation_counts"] = counts
        parts.append("<h2>Fleet query health</h2><table>"
                     "<tr><th>count</th><th>value</th></tr>")
        for key in sorted(counts):
            value = counts[key]
            if isinstance(value, dict):
                value = ", ".join(f"{k}={v}" for k, v in sorted(value.items())) or "—"
            parts.append(f"<tr><td>{escape(str(key))}</td>"
                         f"<td>{escape(str(value))}</td></tr>")
        parts.append("</table>")
        for entry in degradation.get("degraded_runs", []):
            parts.append(f'<div class="issue">degraded: '
                         f'{escape(str(entry.get("run_id")))} at the '
                         f'{escape(str(entry.get("stage")))} stage — '
                         f'{escape(str(entry.get("reason")))}</div>')

    lock = catalog_lock_stats()
    state["catalog_lock"] = dict(lock)
    parts.append("<h2>Catalog lock</h2><table><tr>" + "".join(
        f"<th>{escape(key)}</th>" for key in sorted(lock)) + "</tr><tr>" +
        "".join(f"<td>{lock[key]:g}</td>" for key in sorted(lock)) +
        "</tr></table>")
    return "\n".join(parts), state


def _health_panel(health, sparklines: Sequence[Tuple[str, str, str]]) -> str:
    parts: List[str] = []
    for section, name, label in sparklines:
        points = health.series(section, name)
        svg = _sparkline(points)
        if not svg:
            continue
        current = points[-1][1]
        parts.append(f'<div class="spark"><div class="label">'
                     f'{escape(label)} — now {current:g}</div>{svg}</div>')
    if not parts:
        return "<p>No health samples yet.</p>"
    return "\n".join(parts)


def _issues_panel(issue_log, top: int) -> str:
    rows = issue_log.records()
    if not rows:
        return "<p>No issues filed.</p>"
    parts: List[str] = []
    for row in rows[-top:][::-1]:
        severity = str(row.get("severity", "warning"))
        css = "issue critical" if severity == "critical" else "issue"
        workload = str(row.get("workload", ""))
        tag = f" [{escape(workload)}]" if workload else ""
        parts.append(f'<div class="{css}"><strong>'
                     f'{escape(str(row.get("analysis", "?")))}</strong>{tag} — '
                     f'{escape(str(row.get("node", "")))}<br/>'
                     f'{escape(str(row.get("message", "")))}</div>')
    parts.append(f'<p class="meta">{len(rows)} issue(s) on file, newest '
                 f'{min(top, len(rows))} shown</p>')
    return "\n".join(parts)


def render_dashboard(store=None, health=None, live: Optional[Iterable] = None,
                     issue_log=None, title: str = "repro fleet dashboard",
                     refresh_s: int = 5, metric: str = M.METRIC_GPU_TIME,
                     top: int = 10,
                     sparklines: Sequence[Tuple[str, str, str]] =
                     DEFAULT_SPARKLINES) -> str:
    """Render the fleet dashboard page; every input is optional.

    ``live`` is an iterable of the watcher's :class:`WatchedRun` entries (or
    anything exposing ``name``/``view``/``nodes``/``metric_total``); only
    these get flame-graphed.  Store panels are answered from the catalog and
    the fleet query index alone.
    """
    sections: List[str] = []
    state: Dict[str, object] = {}
    sections.append("<h2>Live runs</h2>")
    live_html, live_state = _live_panel(live or (), metric, top)
    sections.append(live_html)
    state["live"] = live_state
    sections.append("<h2>Health trends</h2>")
    sections.append(_health_panel(health, sparklines)
                    if health is not None else "<p>No health time-series.</p>")
    if store is not None:
        store_html, store_state = _store_panels(store, metric)
        sections.append(store_html)
        state["store"] = store_state
    sections.append("<h2>Issue log</h2>")
    sections.append(_issues_panel(issue_log, top)
                    if issue_log is not None else "<p>No issue log.</p>")
    return _PAGE_TEMPLATE.format(
        title=escape(title),
        refresh_s=int(refresh_s),
        body="\n".join(sections),
        state_json=json.dumps(state, sort_keys=True),
    )


def save_dashboard(path: str, **kwargs) -> str:
    """Atomically (re)write the dashboard page.

    Temp-plus-rename so the browser's next auto-refresh never reads a
    half-written page, no matter when the watcher's render job lands.
    """
    page = render_dashboard(**kwargs)
    temp_path = f"{path}.{os.getpid()}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(page)
    os.replace(temp_path, path)
    return path
