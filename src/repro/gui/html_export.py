"""Standalone HTML export (the WebView-based visualization interface stand-in).

The exported page embeds the flame-graph JSON, the analyzer's findings and a
small amount of inline JavaScript for expanding/collapsing frames — enough to
inspect profiles in a browser without VS Code, while keeping the module free of
external dependencies.
"""

from __future__ import annotations

from typing import List, Optional
from xml.sax.saxutils import escape

from ..analyzer.report import AnalysisReport
from .flamegraph import FlameGraph
from .json_export import flamegraph_to_json
from .svg_export import render_svg

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<title>{title}</title>
<style>
  body {{ font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5rem; color: #1a1a1a; }}
  h1 {{ font-size: 1.3rem; }}
  h2 {{ font-size: 1.05rem; margin-top: 1.6rem; }}
  .issue {{ border-left: 4px solid #edc948; padding: 0.3rem 0.6rem; margin: 0.4rem 0; background: #fdf6e3; }}
  .issue.critical {{ border-color: #e15759; background: #fdecea; }}
  .metrics {{ border-collapse: collapse; }}
  .metrics td, .metrics th {{ border: 1px solid #ddd; padding: 4px 8px; font-size: 0.85rem; }}
  .view {{ margin-top: 1rem; overflow-x: auto; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{subtitle}</p>
{issues_html}
<h2>Flame graph ({view} view)</h2>
<div class="view">{svg}</div>
<script type="application/json" id="deepcontext-flamegraph">{flame_json}</script>
<script>
  // The VS Code extension posts editor actions; the standalone page simply
  // logs which frame the user clicked so the behaviour remains observable.
  document.querySelectorAll('rect').forEach(function (rect) {{
    rect.addEventListener('click', function () {{
      console.log('open-source-location', rect.querySelector('title').textContent);
    }});
  }});
</script>
</body>
</html>
"""


def render_issue_list(report: Optional[AnalysisReport]) -> str:
    if report is None or not report.issues:
        return "<p>No performance issues flagged.</p>"
    items: List[str] = ["<h2>Analyzer findings</h2>"]
    for issue in report.issues:
        css = "issue critical" if issue.severity.value == "critical" else "issue"
        items.append(
            f'<div class="{css}"><strong>{escape(issue.analysis)}</strong> — '
            f'{escape(issue.node_name)}<br/>{escape(issue.message)}'
            + (f'<br/><em>{escape(issue.suggestion)}</em>' if issue.suggestion else "")
            + "</div>"
        )
    return "\n".join(items)


def render_html(graph: FlameGraph, report: Optional[AnalysisReport] = None,
                title: str = "DeepContext profile", subtitle: str = "") -> str:
    """Render a self-contained HTML report for one flame-graph view."""
    return _PAGE_TEMPLATE.format(
        title=escape(title),
        subtitle=escape(subtitle),
        issues_html=render_issue_list(report),
        view=escape(graph.view),
        svg=render_svg(graph, title=""),
        flame_json=flamegraph_to_json(graph),
    )


def save_html(graph: FlameGraph, path: str, report: Optional[AnalysisReport] = None,
              title: str = "DeepContext profile", subtitle: str = "") -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html(graph, report=report, title=title, subtitle=subtitle))
    return path
