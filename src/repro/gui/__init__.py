"""GUI layer: flame graphs, colour coding, HTML/SVG/JSON exports, IDE bridge."""

from .color import delta_color, frame_color, heat_color, kind_color, severity_color
from .dashboard import DEFAULT_SPARKLINES, render_dashboard, save_dashboard
from .differential import (
    DeltaFlameNode,
    DifferentialFlameGraphBuilder,
    differential_flamegraph,
    differential_to_dict,
    differential_to_json,
    save_differential_json,
)
from .flamegraph import FlameGraph, FlameGraphBuilder, FlameNode
from .html_export import render_html, save_html
from .ide import EditorAction, IdeBridge, VisualizationEvent
from .json_export import (
    chrome_trace_events,
    flamegraph_to_dict,
    flamegraph_to_folded,
    flamegraph_to_json,
    flamegraph_to_speedscope,
)
from .svg_export import render_svg, save_svg

__all__ = [
    "FlameGraph",
    "FlameGraphBuilder",
    "FlameNode",
    "frame_color",
    "heat_color",
    "kind_color",
    "severity_color",
    "delta_color",
    "DeltaFlameNode",
    "DifferentialFlameGraphBuilder",
    "differential_flamegraph",
    "differential_to_dict",
    "differential_to_json",
    "save_differential_json",
    "render_html",
    "save_html",
    "DEFAULT_SPARKLINES",
    "render_dashboard",
    "save_dashboard",
    "render_svg",
    "save_svg",
    "flamegraph_to_dict",
    "flamegraph_to_json",
    "flamegraph_to_folded",
    "flamegraph_to_speedscope",
    "chrome_trace_events",
    "EditorAction",
    "IdeBridge",
    "VisualizationEvent",
]
