"""Figure 5 — calling-context-tree operations: insert, propagate, aggregate.

Benchmarks the three CCT primitives on synthetic call paths and checks the
aggregation invariants (sum/min/max/mean/std per node, propagation to the
root, frame collapsing across repeated insertions).
"""

from conftest import print_block

from repro.core import CallingContextTree
from repro.core import metrics as M
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    native_frame,
    python_frame,
    root_frame,
)


def synthetic_callpaths(num_modules: int = 8, kernels_per_module: int = 6):
    paths = []
    for module_index in range(num_modules):
        for kernel_index in range(kernels_per_module):
            paths.append(CallPath.of([
                root_frame("figure5"),
                python_frame("train.py", 10 + module_index, "train_step"),
                framework_frame(f"aten::op_{module_index}"),
                native_frame(f"at::native::op_{module_index}", "libtorch_cuda.so",
                             0x1000 + module_index),
                gpu_kernel_frame(f"kernel_{module_index}_{kernel_index}"),
            ]))
    return paths


def build_tree(paths, repeats: int = 50):
    tree = CallingContextTree("figure5")
    for repeat in range(repeats):
        for index, path in enumerate(paths):
            node = tree.insert(path)
            tree.attribute(node, M.METRIC_GPU_TIME, 1e-4 * (1 + index % 7))
            tree.attribute(node, M.METRIC_KERNEL_COUNT, 1.0)
    return tree


def test_figure5_cct_insert_propagate_aggregate(once):
    paths = synthetic_callpaths()
    tree = once(build_tree, paths, 50)

    total_inserts = 50 * len(paths)
    # Touch the inclusive view before reading the propagation counter: the
    # lazy model only performs its (single, tree-sized) propagation pass when
    # an inclusive metric is first queried.
    root_gpu_time = tree.root.inclusive.sum(M.METRIC_GPU_TIME)
    root_kernels = tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT)
    summary = (
        f"call paths inserted : {total_inserts}\n"
        f"distinct CCT nodes  : {tree.node_count()}\n"
        f"metric propagations : {tree.propagations}\n"
        f"root gpu_time sum   : {root_gpu_time:.6f} s\n"
        f"root kernel count   : {root_kernels:.0f}"
    )
    print_block("Figure 5: CCT operations", summary)

    # Collapsing: the tree size is bounded by distinct contexts, not insertions.
    assert tree.insertions == total_inserts
    assert tree.node_count() < len(paths) * 6

    # Propagation: the root's inclusive metrics equal the sum over all leaves.
    leaf_total = sum(node.exclusive.sum(M.METRIC_GPU_TIME) for node in tree.nodes())
    assert abs(tree.root.inclusive.sum(M.METRIC_GPU_TIME) - leaf_total) < 1e-9
    assert tree.root.inclusive.sum(M.METRIC_KERNEL_COUNT) == total_inserts

    # Aggregation: each kernel node folded 50 observations into one aggregate.
    kernel_nodes = tree.kernels
    assert kernel_nodes and all(
        node.exclusive.get(M.METRIC_GPU_TIME).count == 50 for node in kernel_nodes)
    sample = kernel_nodes[0].exclusive.get(M.METRIC_GPU_TIME)
    assert sample.min <= sample.mean <= sample.max
    assert sample.std == 0.0  # identical values per context
