"""Table 3 — the seven optimization case studies (paper §6).

The speedup *shape* asserted here: DLRM gains the most, U-Net layout and
data-loader fixes give moderate gains, GNN and Transformer-Big fusion give
small gains, and the two N/A rows (Llama3 stalls, AMD-vs-Nvidia) produce the
expected analysis evidence instead of a speedup.
"""

from conftest import print_block

from repro.experiments import format_table3, run_all_case_studies


def test_table3_case_studies(once):
    results = once(run_all_case_studies, iterations=2, small=True)
    print_block("Table 3: case studies summary", format_table3(results))
    by_id = {result.case_id: result for result in results}
    assert set(by_id) == {1, 2, 3, 4, 5, 6, 7}

    # Case 1 — DLRM aten::index -> aten::index_select (paper: 1.66x).
    dlrm = by_id[1]
    assert dlrm.speedup is not None and dlrm.speedup > 1.2
    assert any("aten::index" in message for message in dlrm.issues_found)
    assert dlrm.details["index_backward_ratio"] > 10

    # Case 2 — GNN, same fix, smaller gain (paper: 1.07x).
    gnn = by_id[2]
    assert gnn.speedup is not None and 1.0 < gnn.speedup < dlrm.speedup

    # Case 3 — U-Net channels_last (paper: 1.28x).
    unet_layout = by_id[3]
    assert unet_layout.speedup is not None and unet_layout.speedup > 1.03
    assert unet_layout.details["conversion_gpu_fraction"] > 0.04

    # Case 4 — U-Net data-loader workers (paper: 1.15x).
    unet_loader = by_id[4]
    assert unet_loader.speedup is not None and unet_loader.speedup > 1.05
    assert unet_loader.issues_found, "CPU latency analysis found no issue"

    # Case 5 — Transformer-Big kernel fusion (paper: 1.06x).
    fusion = by_id[5]
    assert fusion.speedup is not None and fusion.speedup > 1.0
    assert fusion.details["optimized_kernels"] < fusion.details["baseline_kernels"]

    # Case 6 — Llama3 fine-grained stalls (paper reports N/A speedup).
    llama = by_id[6]
    assert llama.speedup is None
    assert llama.details["constant_memory_stalls"] > 0
    assert llama.details["math_dependency_stalls"] > 0
    assert llama.details["optimized_gpu_seconds"] < llama.details["baseline_gpu_seconds"]

    # Case 7 — AMD vs Nvidia hotspot shift (paper reports N/A speedup).
    amd = by_id[7]
    assert amd.speedup is None
    assert any("instance_norm" in message for message in amd.issues_found)
    assert amd.details["amd_instance_norm_fraction"] > amd.details["nvidia_instance_norm_fraction"]

    # Overall ordering of the measured speedups matches the paper:
    # DLRM > UNet layout ~ UNet loader > GNN ~ Transformer fusion.
    assert dlrm.speedup == max(result.speedup for result in results if result.speedup)
