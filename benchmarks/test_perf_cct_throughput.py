"""CCT throughput — lazy inclusive propagation vs the eager baseline.

Microbenchmark of the profiler's hottest path: folding observations into the
calling context tree.  The lazy model pays O(1) per observation (exclusive
Welford updates only) and materializes the inclusive view once per query
generation; the eager baseline below replays the seed implementation, which
walked every ancestor on every observation.  On a deep synthetic CCT the gap
is roughly the tree depth times the number of metrics per record.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_cct_throughput.py \
        --benchmark-only -q -s -m perf
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

import pytest

from conftest import print_block

from repro.core import CallingContextTree
from repro.core import metrics as M
from repro.core.metrics import MetricSet
from repro.dlmonitor.callpath import (
    CallPath,
    Frame,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
)

CONTEXTS = 32
DEPTH = 64
OBSERVATIONS_PER_CONTEXT = 50

#: One GPU activity record's worth of metrics (what ``_on_activity`` folds).
RECORD_METRICS = {
    M.METRIC_GPU_TIME: 1.25e-4,
    M.METRIC_KERNEL_COUNT: 1.0,
    M.METRIC_BLOCKS: 128.0,
    M.METRIC_THREADS_PER_BLOCK: 256.0,
}


def deep_synthetic_paths(contexts: int = CONTEXTS, depth: int = DEPTH) -> List[CallPath]:
    """Call paths with a long shared Python prefix, like a real training loop."""
    prefix = [root_frame("throughput")]
    prefix += [python_frame("train.py", 10 + level, f"fn_{level}") for level in range(depth)]
    paths = []
    for index in range(contexts):
        paths.append(CallPath.of(prefix + [
            framework_frame(f"aten::op_{index % 8}"),
            gpu_kernel_frame(f"kernel_{index}"),
        ]))
    return paths


# -- eager reference -------------------------------------------------------------------

class _EagerNode:
    """Minimal replica of the seed's CCT node (eager inclusive propagation)."""

    __slots__ = ("frame", "parent", "children", "exclusive", "inclusive")

    def __init__(self, frame: Frame, parent: Optional["_EagerNode"] = None) -> None:
        self.frame = frame
        self.parent = parent
        self.children: Dict[Tuple, "_EagerNode"] = {}
        self.exclusive = MetricSet()
        self.inclusive = MetricSet()


class _EagerTree:
    """The seed implementation's attribution algorithm, kept as the baseline."""

    def __init__(self) -> None:
        self.root = _EagerNode(root_frame("eager-baseline"))

    def insert(self, callpath: CallPath) -> _EagerNode:
        node = self.root
        for frame in callpath:
            if frame.kind == FrameKind.ROOT:
                continue
            key = frame.identity()
            child = node.children.get(key)
            if child is None:
                child = _EagerNode(frame, parent=node)
                node.children[key] = child
            node = child
        return node

    def attribute_many(self, node: _EagerNode, metrics: Dict[str, float]) -> None:
        for metric, value in metrics.items():
            node.exclusive.add(metric, value)
            current: Optional[_EagerNode] = node
            while current is not None:
                current.inclusive.add(metric, value)
                current = current.parent


# -- workloads -------------------------------------------------------------------------

def run_lazy(paths: List[CallPath]) -> float:
    tree = CallingContextTree("throughput")
    leaves = [tree.insert(path) for path in paths]
    for _ in range(OBSERVATIONS_PER_CONTEXT):
        for leaf in leaves:
            tree.attribute_many(leaf, RECORD_METRICS)
    # Query at the end forces the single inclusive materialization pass, so
    # the lazy timing includes everything needed to answer the same queries.
    return tree.root.inclusive.sum(M.METRIC_GPU_TIME)


def run_eager(paths: List[CallPath]) -> float:
    tree = _EagerTree()
    leaves = [tree.insert(path) for path in paths]
    for _ in range(OBSERVATIONS_PER_CONTEXT):
        for leaf in leaves:
            tree.attribute_many(leaf, RECORD_METRICS)
    return tree.root.inclusive.sum(M.METRIC_GPU_TIME)


def best_of(func, *args, repeats: int = 3) -> Tuple[float, float]:
    """(best wall seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


# -- benchmarks ------------------------------------------------------------------------

@pytest.mark.perf
def test_cct_attribution_throughput(benchmark):
    paths = deep_synthetic_paths()
    observations = CONTEXTS * OBSERVATIONS_PER_CONTEXT

    # Re-measure on a dip below the asserted floor: wall-clock ratios on a
    # loaded machine can catch one side in a noisy slice, and a retry
    # distinguishes scheduler noise from a genuine regression.
    for _attempt in range(3):
        lazy_seconds, lazy_total = best_of(run_lazy, paths)
        eager_seconds, eager_total = best_of(run_eager, paths)
        speedup = eager_seconds / lazy_seconds
        if speedup >= 5.0:
            break
    benchmark.pedantic(run_lazy, args=(paths,), rounds=3, iterations=1, warmup_rounds=0)
    results = {
        "benchmark": "cct_throughput",
        "contexts": CONTEXTS,
        "depth": DEPTH,
        "observations": observations,
        "metrics_per_observation": len(RECORD_METRICS),
        "lazy_ops_per_sec": observations / lazy_seconds,
        "eager_ops_per_sec": observations / eager_seconds,
        "speedup": speedup,
    }
    benchmark.extra_info.update(results)
    print_block(
        "CCT attribution throughput (lazy vs eager propagation)",
        json.dumps(results, indent=2),
    )

    # Both models must agree on what they aggregated...
    assert lazy_total == pytest.approx(eager_total, rel=1e-9)
    assert lazy_total == pytest.approx(observations * RECORD_METRICS[M.METRIC_GPU_TIME], rel=1e-9)
    # ...and the lazy model must be dramatically faster on deep trees.
    assert speedup >= 5.0, f"expected >=5x speedup over eager propagation, got {speedup:.1f}x"


@pytest.mark.perf
def test_cct_query_latency(benchmark):
    from repro.analyzer.query import CCTQuery

    paths = deep_synthetic_paths()
    tree = CallingContextTree("throughput")
    leaves = [tree.insert(path) for path in paths]
    for _ in range(OBSERVATIONS_PER_CONTEXT):
        for leaf in leaves:
            tree.attribute_many(leaf, RECORD_METRICS)

    query = CCTQuery(tree)

    def run_queries():
        kernels = query.kernels()
        top = query.top_by_metric(kernels, M.METRIC_GPU_TIME, k=10)
        by_name = query.aggregate_kernels_by_name(M.METRIC_GPU_TIME)
        total = query.total(M.METRIC_GPU_TIME)
        return kernels, top, by_name, total

    kernels, top, by_name, total = benchmark.pedantic(
        run_queries, rounds=5, iterations=1, warmup_rounds=1)

    latency = best_of(run_queries, repeats=5)[0]
    results = {
        "benchmark": "cct_query_latency",
        "cct_nodes": tree.node_count(),
        "kernels": len(kernels),
        "query_latency_us": latency * 1e6,
    }
    benchmark.extra_info.update(results)
    print_block("CCT query latency (indexed hot paths)", json.dumps(results, indent=2))

    assert len(kernels) == CONTEXTS
    assert len(top) == 10
    assert sum(by_name.values()) == pytest.approx(total, rel=1e-9)
