"""Table 1 — feature matrix of DeepContext vs existing profiling tools."""

from conftest import print_block

from repro.experiments import deepcontext_dominates, format_table1, table1_matrix
from repro.experiments.features import FEATURE_COLUMNS


def test_table1_feature_matrix(once):
    rows = once(table1_matrix)
    print_block("Table 1: profiling-tool feature comparison", format_table1(rows))

    tools = {row["tool"] for row in rows}
    assert {"DeepContext", "PyTorch profiler", "JAX profiler",
            "Nsight Systems", "RocTracer"} <= tools

    deepcontext = next(row for row in rows if row["tool"] == "DeepContext")
    # DeepContext's row is all-check: every context level, both vendors, both
    # frameworks, plus CPU profiling (the paper's headline of Table 1).
    assert all(deepcontext[column] for column in FEATURE_COLUMNS)
    # No other tool covers framework + device context simultaneously.
    for row in rows:
        if row["tool"] != "DeepContext":
            assert not (row["framework_context"] and row["device_context"])
    assert deepcontext_dominates()
