"""Figure 10 — flame graphs of U-Net on Nvidia vs AMD.

On the Nvidia platform the hotspot operator is ``aten::conv2d`` (expected); on
the AMD platform the hotspot shifts to ``aten::instance_norm`` because PyTorch
reuses a warp-32-tuned batch-norm kernel template on a warp-64 architecture
(case study 6.5).
"""

from conftest import print_block

from repro.analyzer import ForwardBackwardAnalysis
from repro.experiments import PROFILER_DEEPCONTEXT_NATIVE, run_workload
from repro.gui import FlameGraphBuilder, render_svg
from repro.workloads import create_workload


def profile_unet(device: str):
    result = run_workload(create_workload("unet", small=True, channels_last=True),
                          device=device, profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)
    analysis = ForwardBackwardAnalysis()
    totals = {}
    for op_name, entry in analysis.operator_times(result.database.tree).items():
        totals[op_name] = entry["forward"] + entry["backward"]
    return result, totals


def run_both():
    return profile_unet("a100"), profile_unet("mi250")


def test_figure10_amd_vs_nvidia_flamegraphs(once):
    (nvidia_result, nvidia_totals), (amd_result, amd_totals) = once(run_both)

    def render(totals):
        total = sum(totals.values()) or 1.0
        return "\n".join(f"  {name:28s} {value / total:6.1%}"
                         for name, value in sorted(totals.items(), key=lambda i: -i[1])[:6])

    print_block("Figure 10(a): Nvidia A100 — GPU time per operator", render(nvidia_totals))
    print_block("Figure 10(b): AMD MI250 — GPU time per operator", render(amd_totals))

    nvidia_top = max(nvidia_totals, key=nvidia_totals.get)
    amd_top = max(amd_totals, key=amd_totals.get)
    # The paper's observation: conv2d on Nvidia (expected), instance_norm on AMD.
    assert nvidia_top == "aten::conv2d"
    assert amd_top == "aten::instance_norm"

    # instance_norm's share grows dramatically on AMD relative to Nvidia.
    def share(totals, op):
        return totals.get(op, 0.0) / (sum(totals.values()) or 1.0)

    assert share(amd_totals, "aten::instance_norm") > 2 * share(nvidia_totals, "aten::instance_norm")

    # Both flame graphs render (the GUI artifact of Figure 10).
    for result in (nvidia_result, amd_result):
        graph = FlameGraphBuilder().top_down(result.database.tree)
        svg = render_svg(graph, title=f"U-Net on {result.device}")
        assert svg.startswith("<svg") and "instance_norm" in svg
