"""Figure 8 — the bottom-up view of the U-Net workload.

The bottom-up flame graph aggregates each kernel across every calling context;
for U-Net on the Nvidia platform the ``cudnn::nchwToNhwcKernel`` layout
conversion shows up prominently (15.4% of GPU time in the paper), which is the
entry point of case study 6.2.
"""

from conftest import print_block

from repro.dlmonitor.callpath import FrameKind
from repro.experiments import PROFILER_DEEPCONTEXT_NATIVE, run_workload
from repro.gui import FlameGraphBuilder, flamegraph_to_dict
from repro.workloads import create_workload


def build_bottom_up():
    result = run_workload(create_workload("unet", small=True), device="a100",
                          profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)
    graph = FlameGraphBuilder().bottom_up(result.database.tree, kind=FrameKind.GPU_KERNEL)
    return result, graph


def test_figure8_bottom_up_view(once):
    result, graph = once(build_bottom_up)

    lines = [f"{entry.label:60s} {entry.value * 1e3:9.3f} ms  {entry.fraction:6.1%}"
             for entry in graph.root.children[:10]]
    print_block("Figure 8: bottom-up view of U-Net (top kernels across all contexts)",
                "\n".join(lines))

    labels = [entry.label for entry in graph.root.children]
    # The layout-conversion kernels are visible and significant in this view.
    conversion_entries = [entry for entry in graph.root.children
                          if "nchwToNhwc" in entry.label or "nhwcToNchw" in entry.label]
    assert conversion_entries, "conversion kernels missing from the bottom-up view"
    conversion_fraction = sum(entry.fraction for entry in conversion_entries)
    assert conversion_fraction > 0.04

    # Bottom-up totals equal the tree's total GPU time, and each entry carries
    # its caller chain underneath (callers, not callees).
    assert abs(graph.total - result.database.total_gpu_time()) < 1e-9
    top_entry = graph.root.children[0]
    assert top_entry.children, "bottom-up entries should expand into caller chains"

    # The exported structure round-trips to a plain dict for the WebView.
    exported = flamegraph_to_dict(graph)
    assert exported["view"] == "bottom_up"
    assert exported["root"]["children"][0]["name"] == labels[0]
