"""Table 2 — the two evaluation platforms (Nvidia A100 SXM, AMD MI250)."""

from conftest import print_block

from repro.experiments import format_table2, platform_differences, table2_rows


def test_table2_platforms(once):
    rows = once(table2_rows)
    print_block("Table 2: evaluation platforms", format_table2())

    assert len(rows) == 2
    by_gpu = {row["GPU"]: row for row in rows}
    assert "A100 SXM" in by_gpu and "MI250" in by_gpu
    assert by_gpu["A100 SXM"]["GPU Memory"] == "80 GB"
    assert by_gpu["MI250"]["GPU Memory"] == "64 GB"

    differences = platform_differences()
    # The architectural parameters the case studies hinge on.
    assert differences["a100"]["warp_size"] == 32
    assert differences["mi250"]["warp_size"] == 64
    assert differences["mi250"]["compute_units"] > differences["a100"]["compute_units"]
    assert differences["mi250"]["memory_bandwidth_tbs"] > differences["a100"]["memory_bandwidth_tbs"]
