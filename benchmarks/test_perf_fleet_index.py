"""Fleet query index — indexed catalog-side queries vs lazy-view decode.

Microbenchmark for PR 8's headline claim: over a large stored population,
``FleetAggregator.top_kernels`` + ``aggregate_by_name`` served from the
**fleet query index** (per-run columnar summaries + global name dictionary;
no profile opened at all) must beat the **lazy-view** path (one frame table
+ one metric column decoded per shard per run) by ≥10x — and return the
*identical* floats, because the index rows are the same per-name Welford
states the lazy path computes, folded in the same order.

The fixture is a store of 64 ingested runs (~26k stored nodes fleet-wide).
Each trial builds a fresh aggregator, so both gears pay their real
end-to-end cost: the lazy path opens 64 mmaps and decodes 64 frame tables +
columns per query; the indexed path reads 64 small JSON summaries.  The
parallel lazy decode (``max_workers=4``) is timed as well, for reference —
it bounds what the fallback path can recover when the index is absent.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_fleet_index.py \
        --benchmark-only -q -s -m perf

(Tier-1 skips ``perf``-marked benchmarks via ``addopts``; the explicit
``-m perf`` on the command line overrides that.)
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import print_block

from repro.core import ProfileDatabase, ProfileMetadata
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import ProfileStore

pytestmark = pytest.mark.perf

RUNS = 64
STEPS = 25
OPERATORS = 15
KERNELS = 4
# Per run: 1 shard × (1 thread + 25 steps + 375 ops + 1500 kernels) ≈ 1.9k
# nodes → ~122k stored nodes across the 64-run fleet.  Summaries stay small
# regardless: rows scale with *unique names* (~100 here), not nodes.

MIN_SPEEDUP = 10.0


def build_run(index: int) -> ProfileDatabase:
    tree = ShardedCallingContextTree("fleet-index-bench")
    scale = 1.0 + 0.01 * index
    shard = tree.shard_for_tid(1, thread_name="main")
    prefix = [root_frame("fleet-index-bench"), thread_frame("main", 1)]
    for step in range(STEPS):
        step_frame = python_frame("train.py", step, f"step_{step}")
        for op in range(OPERATORS):
            op_frame = framework_frame(f"aten::op_{op}")
            for kernel in range(KERNELS):
                path = CallPath.of(prefix + [
                    step_frame, op_frame,
                    gpu_kernel_frame(f"kernel_{op}_{kernel}"),
                ])
                node = shard.insert(path)
                shard.attribute_many(node, {
                    M.METRIC_GPU_TIME: 1.25e-4 * scale,
                    M.METRIC_KERNEL_COUNT: 1.0,
                })
    metadata = ProfileMetadata(program="fleet-index-bench",
                               workload=f"fleet-index-bench-{index}",
                               device="A100")
    return ProfileDatabase(tree, metadata)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def best_of(trials: int, func):
    """Minimum wall time over ``trials`` runs (cold-path latency; the
    minimum strips scheduler/GC noise on shared machines)."""
    best, result = float("inf"), None
    for _trial in range(trials):
        seconds, result = timed(func)
        best = min(best, seconds)
    return best, result


class TestFleetIndexQueries:
    def test_indexed_fleet_queries_vs_lazy_views(self, once, tmp_path):
        import gc

        store = ProfileStore(tmp_path / "fleet")
        stored_nodes = 0
        for index in range(RUNS):
            record = store.ingest(build_run(index))
            stored_nodes += record.nodes
        run_ids = store.run_ids()
        assert len(run_ids) == RUNS
        assert len(store.fleet_index.run_ids()) == RUNS

        def fleet_queries(**options):
            # A fresh aggregator per trial: each gear pays its full
            # end-to-end cost (open/validate + decode/read + fold).
            with store.aggregator(run_ids=run_ids, **options) as aggregator:
                top = aggregator.top_kernels(10)
                by_name = aggregator.aggregate_by_name(
                    kind=None, metric=M.METRIC_GPU_TIME)
                assert aggregator.hydrated_run_ids == []
                return top, by_name, list(aggregator.indexed_run_ids)

        gc.collect()
        gc.disable()  # GC pauses over decoded blocks would swamp timings
        try:
            lazy_seconds, (lazy_top, lazy_by_name, lazy_indexed) = best_of(
                3, lambda: fleet_queries(use_index=False))
            parallel_seconds, _ = best_of(
                3, lambda: fleet_queries(use_index=False, max_workers=4))
            indexed_seconds, (top, by_name, indexed) = best_of(
                3, fleet_queries)
        finally:
            gc.enable()

        # The indexed gear answered every run from index rows...
        assert lazy_indexed == []
        assert len(indexed) == RUNS
        # ...and bit-for-bit identically to the lazy-view path: the index
        # rows replay the exact accumulation sequence, so this is ==, not
        # approx.
        assert top == lazy_top
        assert by_name == lazy_by_name

        speedup = lazy_seconds / indexed_seconds
        once(lambda: None)  # record the run under pytest-benchmark
        print_block(
            f"fleet top_kernels + aggregate_by_name over {RUNS} stored runs "
            f"({stored_nodes} nodes fleet-wide)",
            json.dumps({
                "runs": RUNS,
                "stored_nodes": stored_nodes,
                "indexed_s": indexed_seconds,
                "lazy_views_s": lazy_seconds,
                "lazy_views_parallel4_s": parallel_seconds,
                "speedup_indexed_vs_lazy": speedup,
            }, indent=2))

        assert speedup >= MIN_SPEEDUP, (
            f"indexed fleet queries must be ≥{MIN_SPEEDUP}x faster than the "
            f"lazy-view path over {RUNS} runs, got {speedup:.1f}x "
            f"({indexed_seconds * 1e3:.2f} ms vs {lazy_seconds * 1e3:.2f} ms)")
