"""Figure 6(d) — memory overhead of JAX(-mode, JIT-compiled) workloads."""

from conftest import print_block

from repro.baselines import TorchProfilerBaseline
from repro.experiments import (
    MODE_JIT,
    PROFILER_DEEPCONTEXT,
    PROFILER_FRAMEWORK,
    format_overhead_rows,
    median_overheads,
    overhead_sweep,
)

JIT_WORKLOADS = ("conformer", "dlrm", "unet", "gnn", "resnet", "vit",
                 "transformer_big", "llama3", "gemma", "nanogpt")


def test_figure6d_memory_overhead_jax_mode(once):
    rows = once(overhead_sweep, JIT_WORKLOADS, "a100", MODE_JIT, 4, True)
    print_block("Figure 6(d): memory overhead, JAX (JIT) mode, Nvidia A100",
                format_overhead_rows(rows, which="memory"))

    medians = median_overheads(rows, which="memory")
    assert 1.0 <= medians[PROFILER_DEEPCONTEXT] < 2.5
    assert medians[PROFILER_FRAMEWORK] >= medians[PROFILER_DEEPCONTEXT] - 1e-4

    # Per-workload: DeepContext's profile is never dramatically larger than the
    # baseline's, while the baseline can be much larger (long-running traces).
    for row in rows:
        assert row.memory_overhead[PROFILER_DEEPCONTEXT] <= \
            row.memory_overhead[PROFILER_FRAMEWORK] * 1.5


def test_figure6d_trace_export_out_of_memory(once):
    """The paper notes the trace-based profiler can fail with OOM at export time."""

    def run_with_tiny_limit():
        from repro.framework import EagerEngine
        from repro.workloads import create_workload

        engine = EagerEngine("a100")
        baseline = TorchProfilerBaseline(engine, memory_limit_bytes=64 * 1024)
        workload = create_workload("nanogpt", small=True)
        with engine:
            workload.build(engine)
            baseline.start()
            for iteration in range(4):
                workload.run_iteration(engine, iteration)
            engine.synchronize()
            baseline.stop()
        return baseline

    baseline = once(run_with_tiny_limit)
    assert baseline.buffer.out_of_memory
    try:
        baseline.export("/tmp/figure6d_trace.json")
        exported = True
    except MemoryError:
        exported = False
    assert not exported, "export should fail once the trace exceeded its memory limit"
