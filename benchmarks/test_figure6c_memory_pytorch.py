"""Figure 6(c) — memory overhead of PyTorch(-mode) workloads.

DeepContext aggregates metrics online into a calling context tree, so its
profile size is bounded by the number of distinct contexts; the framework
profiler baseline records one event per operator/kernel occurrence, so its
footprint grows with iteration count (up to 27x in the paper, with one
out-of-memory failure at export time).
"""

from conftest import print_block

from repro.experiments import (
    MODE_EAGER,
    PROFILER_DEEPCONTEXT,
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_FRAMEWORK,
    format_overhead_rows,
    median_overheads,
    memory_growth_with_iterations,
    overhead_sweep,
)
from repro.workloads import workload_names


def test_figure6c_memory_overhead_pytorch_mode(once):
    rows = once(overhead_sweep, workload_names(), "a100", MODE_EAGER, 4, True)
    print_block("Figure 6(c): memory overhead, PyTorch mode, Nvidia A100",
                format_overhead_rows(rows, which="memory"))

    medians = median_overheads(rows, which="memory")
    # DeepContext's profile stays small relative to the application footprint.
    assert 1.0 <= medians[PROFILER_DEEPCONTEXT] < 2.5
    assert 1.0 <= medians[PROFILER_DEEPCONTEXT_NATIVE] < 3.0
    # The trace-based baseline already costs at least as much at 4 iterations
    # (profile sizes are tiny next to model state at this scale, hence the
    # tolerance; the growth check below is the discriminating property).
    assert medians[PROFILER_FRAMEWORK] >= medians[PROFILER_DEEPCONTEXT] - 1e-4

    # Growth with iterations: the baseline grows roughly linearly while
    # DeepContext's CCT stays (near-)constant — the key property of Figure 6(c).
    growth = memory_growth_with_iterations("transformer_big", iteration_counts=(1, 2, 4, 8))
    baseline_growth = growth[PROFILER_FRAMEWORK][-1] / growth[PROFILER_FRAMEWORK][0]
    deepcontext_growth = growth[PROFILER_DEEPCONTEXT][-1] / growth[PROFILER_DEEPCONTEXT][0]
    lines = ["iterations: 1, 2, 4, 8",
             f"framework profiler bytes : {[int(v) for v in growth[PROFILER_FRAMEWORK]]}",
             f"deepcontext bytes        : {[int(v) for v in growth[PROFILER_DEEPCONTEXT]]}",
             f"growth 8x-iterations     : baseline {baseline_growth:.1f}x vs "
             f"deepcontext {deepcontext_growth:.2f}x"]
    print_block("Figure 6(c): profile size growth with iteration count", "\n".join(lines))
    assert baseline_growth > 4.0          # ~linear in iterations
    assert deepcontext_growth < 1.5       # bounded by distinct contexts
