"""Streaming checkpoint cost — incremental reseal vs full re-serialize.

The streaming pipeline's whole reason to exist: checkpointing a long run must
cost proportional to *what changed*, not to the profile.  On the same
50k-node, 4-shard profile the storage I/O benchmark uses, one shard receives
a metric-only update (the steady-state pattern of a training run: the same
calling contexts, fresh timings) and we compare

* **incremental checkpoint** — ``StreamingProfileWriter.checkpoint()``:
  re-encodes and appends only the dirty shard's metric columns (the sealed
  frame table is reused because the shard didn't grow), carries the three
  clean shards forward in the new TOC, and reseals;
* **full re-serialize** — ``database.save(format="cct-binary-v1")``: what the
  pre-streaming pipeline had to do for every durability point.

The gate is the acceptance claim: the one-dirty-shard checkpoint must beat
the full re-serialize by ≥5x.  A second shape assertion checks the appended
bytes are a small fraction of the file (clean shards really are skipped).

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_streaming.py \
        --benchmark-only -q -s -m perf
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import print_block

from repro.core import ProfileDatabase, StreamingProfileWriter
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.core.storage import recover_profile
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)

pytestmark = pytest.mark.perf

SHARDS = 4
STEPS = 125
OPERATORS = 25
KERNELS = 4
# 4 shards × (1 thread + 125 steps + 125×25 ops + 125×25×4 kernels) ≈ 50k.
TARGET_NODES = 50_000

RECORD_METRICS = {
    M.METRIC_GPU_TIME: 1.25e-4,
    M.METRIC_KERNEL_COUNT: 1.0,
    M.METRIC_BLOCKS: 128.0,
    M.METRIC_THREADS_PER_BLOCK: 256.0,
}


def build_profile() -> ProfileDatabase:
    tree = ShardedCallingContextTree("streaming-perf")
    for tid in range(1, SHARDS + 1):
        shard = tree.shard_for_tid(tid, thread_name=f"thread-{tid}")
        prefix = [root_frame("streaming-perf"), thread_frame(f"thread-{tid}", tid)]
        for step in range(STEPS):
            step_frame = python_frame("train.py", step, f"step_{step}")
            for op in range(OPERATORS):
                op_frame = framework_frame(f"aten::op_{op}")
                for kernel in range(KERNELS):
                    path = CallPath.of(prefix + [
                        step_frame, op_frame,
                        gpu_kernel_frame(f"kernel_{op}_{kernel}"),
                    ])
                    node = shard.insert(path)
                    shard.attribute_many(node, RECORD_METRICS)
    return ProfileDatabase(tree)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def dirty_one_shard(tree: ShardedCallingContextTree) -> None:
    """Metric-only mutation of shard 1 (fresh timings, same contexts)."""
    shard = tree.shard_for_tid(1)
    for node in shard.kernels[::8]:
        shard.attribute_many(node, RECORD_METRICS)


class TestStreamingCheckpointCost:
    def test_one_dirty_shard_checkpoint_beats_full_reserialize(
            self, once, tmp_path):
        database = build_profile()
        tree = database.tree
        assert tree.stored_node_count() >= TARGET_NODES

        stream_path = str(tmp_path / "stream.cctb")
        writer = StreamingProfileWriter(database, stream_path)
        initial = writer.checkpoint()  # seal 0: all four shards encoded

        # Steady state: re-attribute into shard 1 only, then reseal.
        # Best-of-3 (each trial re-dirties the shard) strips scheduler noise.
        incremental_seconds = float("inf")
        stats = None
        for _trial in range(3):
            dirty_one_shard(tree)
            seconds, stats = timed(writer.checkpoint)
            incremental_seconds = min(incremental_seconds, seconds)
        assert stats.dirty_shards == 1
        assert stats.clean_shards == SHARDS - 1
        assert stats.frames_blocks == 0  # metric-only: frame table reused

        # The old world: a full binary re-serialize for the same durability.
        full_path = str(tmp_path / "full.cctb")
        full_seconds = float("inf")
        for _trial in range(3):
            seconds, _ = timed(
                lambda: database.save(full_path, format="cct-binary-v1"))
            full_seconds = min(full_seconds, seconds)

        # Sanity: the streamed file still recovers to the live tree's state.
        recovered = recover_profile(stream_path)
        assert recovered.total_gpu_time() == pytest.approx(
            database.total_gpu_time())

        speedup = full_seconds / incremental_seconds
        report = {
            "nodes": tree.stored_node_count(),
            "shards": SHARDS,
            "initial_seal_bytes": initial.bytes_appended,
            "incremental_seal_bytes": stats.bytes_appended,
            "incremental_checkpoint_s": incremental_seconds,
            "full_reserialize_s": full_seconds,
            "speedup_incremental_vs_full": speedup,
            "streamed_file_mb": os.path.getsize(stream_path) / 1e6,
            "full_file_mb": os.path.getsize(full_path) / 1e6,
        }
        once(lambda: None)  # record the run under pytest-benchmark
        print_block("streaming checkpoint (50k-node, 4-shard, 1 dirty)",
                    json.dumps(report, indent=2))

        # Acceptance gate: the incremental reseal must win by ≥5x.
        assert incremental_seconds * 5 <= full_seconds
        # And it must append far less than a full checkpoint's worth.
        assert stats.bytes_appended * 2 <= initial.bytes_appended
