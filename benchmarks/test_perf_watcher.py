"""Fleet watcher overhead — idle polling and catalog-only dashboards.

Two gates for the live-monitoring layer:

* **idle polling is nearly free**: on the streaming-checkpoint benchmark
  shape (50k-node, 4-shard producer, one dirty shard per reseal) a watcher
  polling **8 live runs** that brought no new seal must cost the steady-state
  loop at most **1.05x** — an idle poll is one ``stat`` plus a 256-byte tail
  read per run (the :meth:`LazyProfileView.refresh` fast path), so following
  a fleet cannot tax the producers it follows;
* **dashboards never open profiles**: rendering the fleet dashboard over a
  **64-run** indexed store (plus a health time-series and an issue log) must
  answer entirely from the catalog, the fleet query index and the JSONL
  series — asserted via the ``storage.views_opened`` counter staying flat,
  not just by being fast.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_watcher.py \
        --benchmark-only -q -s -m perf
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import print_block

from repro.core import ProfileDatabase, ProfileMetadata, StreamingProfileWriter
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import FleetWatcher, ProfileStore
from repro.gui import render_dashboard
from repro.obs import TELEMETRY, HealthTimeSeries

pytestmark = pytest.mark.perf

# The producer mirrors benchmarks/test_perf_streaming.py: 4 shards ×
# (1 thread + 125 steps + 125×25 ops + 125×25×4 kernels) ≈ 50k nodes.
SHARDS = 4
STEPS = 125
OPERATORS = 25
KERNELS = 4
LIVE_RUNS = 8
MAX_POLL_OVERHEAD = 1.05

STORE_RUNS = 64
STORE_STEPS = 25
STORE_OPERATORS = 15

RECORD_METRICS = {
    M.METRIC_GPU_TIME: 1.25e-4,
    M.METRIC_KERNEL_COUNT: 1.0,
}


def build_producer() -> ProfileDatabase:
    tree = ShardedCallingContextTree("watcher-perf")
    for tid in range(1, SHARDS + 1):
        shard = tree.shard_for_tid(tid, thread_name=f"thread-{tid}")
        prefix = [root_frame("watcher-perf"), thread_frame(f"thread-{tid}", tid)]
        for step in range(STEPS):
            step_frame = python_frame("train.py", step, f"step_{step}")
            for op in range(OPERATORS):
                op_frame = framework_frame(f"aten::op_{op}")
                for kernel in range(KERNELS):
                    node = shard.insert(CallPath.of(prefix + [
                        step_frame, op_frame,
                        gpu_kernel_frame(f"kernel_{op}_{kernel}"),
                    ]))
                    shard.attribute_many(node, RECORD_METRICS)
    metadata = ProfileMetadata(program="watcher-perf", workload="watcher-perf",
                               device="A100")
    return ProfileDatabase(tree, metadata)


def build_small_run(name: str, steps: int, operators: int,
                    scale: float = 1.0) -> ProfileDatabase:
    tree = ShardedCallingContextTree(name)
    shard = tree.shard_for_tid(1, thread_name="main")
    prefix = [root_frame(name), thread_frame("main", 1)]
    for step in range(steps):
        step_frame = python_frame("train.py", step, f"step_{step}")
        for op in range(operators):
            node = shard.insert(CallPath.of(prefix + [
                step_frame, framework_frame(f"aten::op_{op}"),
                gpu_kernel_frame(f"kernel_{op}"),
            ]))
            shard.attribute_many(node, {M.METRIC_GPU_TIME: 1.25e-4 * scale,
                                        M.METRIC_KERNEL_COUNT: 1.0})
    metadata = ProfileMetadata(program=name, workload=name, device="A100")
    return ProfileDatabase(tree, metadata)


def dirty_one_shard(tree: ShardedCallingContextTree) -> None:
    shard = tree.shard_for_tid(1)
    for node in shard.kernels[::8]:
        shard.attribute_many(node, RECORD_METRICS)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def best_of(trials: int, func):
    best, result = float("inf"), None
    for _trial in range(trials):
        seconds, result = timed(func)
        best = min(best, seconds)
    return best, result


class TestIdleWatcherOverhead:
    def test_polling_8_live_runs_costs_at_most_5_percent(self, once, tmp_path):
        # The producer under measurement: the streaming benchmark's
        # steady-state loop (dirty one shard, reseal).
        database = build_producer()
        tree = database.tree
        writer = StreamingProfileWriter(database,
                                        str(tmp_path / "producer.cctb"))
        writer.checkpoint()

        # The watched fleet: 8 live runs that stop sealing after their
        # first checkpoint — every poll over them is the idle fast path.
        watch_dir = tmp_path / "watch"
        watch_dir.mkdir()
        fleet_writers = []
        for index in range(LIVE_RUNS):
            live = build_small_run(f"live-{index}", steps=10, operators=10,
                                   scale=1.0 + 0.01 * index)
            live_writer = StreamingProfileWriter(
                live, str(watch_dir / f"live-{index}.cctb"))
            live_writer.checkpoint()
            fleet_writers.append(live_writer)

        store = ProfileStore(tmp_path / "store")
        watcher = FleetWatcher(str(watch_dir), store, scrub_every_s=None,
                               drift_every_s=None, snapshot_every_s=None,
                               dashboard_every_s=None)
        watcher.poll_once()  # attach the fleet once, outside the timing
        assert len(watcher.runs) == LIVE_RUNS

        def reseal():
            dirty_one_shard(tree)
            return writer.checkpoint()

        def reseal_while_polling():
            dirty_one_shard(tree)
            stats = writer.checkpoint()
            tick = watcher.poll_once()
            assert tick.advanced == []  # the fleet really was idle
            return stats

        bare_seconds, stats = best_of(5, reseal)
        assert stats.dirty_shards == 1
        polled_seconds, _ = best_of(5, reseal_while_polling)
        watcher.close()
        writer.close()
        for live_writer in fleet_writers:
            live_writer.close()

        overhead = polled_seconds / bare_seconds
        once(lambda: None)  # record the run under pytest-benchmark
        print_block(
            f"idle watcher poll over {LIVE_RUNS} live runs riding the "
            f"streaming-checkpoint loop ({tree.stored_node_count()} nodes)",
            json.dumps({
                "live_runs": LIVE_RUNS,
                "checkpoint_s": bare_seconds,
                "checkpoint_plus_poll_s": polled_seconds,
                "overhead_x": overhead,
                "poll_cost_ms": (polled_seconds - bare_seconds) * 1e3,
            }, indent=2))

        assert overhead <= MAX_POLL_OVERHEAD, (
            f"an idle watcher poll over {LIVE_RUNS} live runs must cost the "
            f"steady-state checkpoint loop at most {MAX_POLL_OVERHEAD}x, "
            f"got {overhead:.3f}x ({bare_seconds * 1e3:.2f} ms -> "
            f"{polled_seconds * 1e3:.2f} ms)")


class TestDashboardFromIndex:
    def test_64_run_dashboard_opens_no_profiles(self, once, tmp_path):
        store = ProfileStore(tmp_path / "fleet")
        for index in range(STORE_RUNS):
            store.ingest(build_small_run(f"dash-bench-{index}",
                                         steps=STORE_STEPS,
                                         operators=STORE_OPERATORS,
                                         scale=1.0 + 0.01 * index))
        assert len(store.fleet_index.run_ids()) == STORE_RUNS

        health = HealthTimeSeries(str(tmp_path / "health.jsonl"), fsync=False)
        issues = HealthTimeSeries(str(tmp_path / "issues.jsonl"), fsync=False)
        for tick in range(128):
            health.append({"gauges": {"watcher.runs_live": float(tick % 9)},
                           "counters": {"fleet.ingests": float(tick)}},
                          ts=float(tick))
        issues.append({"analysis": "regression", "node": "kernel_3",
                       "severity": "warning", "message": "gpu_time grew"},
                      ts=1.0)

        TELEMETRY.enable()
        try:
            opened_before = TELEMETRY.counter_value("storage.views_opened")
            seconds, page = best_of(3, lambda: render_dashboard(
                store=store, health=health, issue_log=issues))
            opened_after = TELEMETRY.counter_value("storage.views_opened")
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

        assert f">{STORE_RUNS}</div>runs in store" in page
        assert "regression" in page

        once(lambda: None)  # record the run under pytest-benchmark
        print_block(
            f"dashboard render over a {STORE_RUNS}-run indexed store",
            json.dumps({
                "runs": STORE_RUNS,
                "render_s": seconds,
                "views_opened_during_render": opened_after - opened_before,
                "page_bytes": len(page),
            }, indent=2))

        # The acceptance gate: served from catalog + index + JSONL series,
        # not by opening stored profiles.
        assert opened_after == opened_before, (
            f"dashboard render opened {opened_after - opened_before:g} "
            f"profile view(s); it must answer from the index alone")
