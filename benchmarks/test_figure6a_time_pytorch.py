"""Figure 6(a) — time overhead of PyTorch(-mode) workloads under each profiler.

For every workload we run four configurations — no profiler, the framework
profiler baseline, DeepContext without native call paths and DeepContext with
native call paths — and report wall-clock overhead ratios.  The shape asserted
matches the paper: DeepContext without native call paths is in the same league
as the framework profiler, the native variant costs more (extra unwinding),
and the small-kernel LLM workloads show the largest overheads.
"""

from conftest import print_block

from repro.experiments import (
    MODE_EAGER,
    PROFILER_DEEPCONTEXT,
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_FRAMEWORK,
    format_overhead_rows,
    median_overheads,
    overhead_sweep,
)
from repro.workloads import workload_names


def test_figure6a_time_overhead_pytorch_mode(once):
    rows = once(overhead_sweep, workload_names(), "a100", MODE_EAGER, 2, True)
    amd_rows = overhead_sweep(["unet", "resnet", "llama3"], device="mi250",
                              mode=MODE_EAGER, iterations=2, small=True)
    print_block("Figure 6(a): time overhead, PyTorch mode, Nvidia A100",
                format_overhead_rows(rows, which="time"))
    print_block("Figure 6(a): time overhead, PyTorch mode, AMD MI250 (subset)",
                format_overhead_rows(amd_rows, which="time"))

    assert len(rows) == len(workload_names())
    medians = median_overheads(rows, which="time")

    # Everything instrumented costs at least roughly as much as uninstrumented.
    assert medians[PROFILER_DEEPCONTEXT] > 0.9
    assert medians[PROFILER_DEEPCONTEXT_NATIVE] > 0.9
    # Native call-path collection is the most expensive configuration (median).
    assert medians[PROFILER_DEEPCONTEXT_NATIVE] >= medians[PROFILER_DEEPCONTEXT] * 0.95
    # The trace-based framework profiler does the least per-event work.
    assert medians[PROFILER_FRAMEWORK] <= medians[PROFILER_DEEPCONTEXT_NATIVE]

    # The LLM workloads (many small kernels) are among the most expensive to
    # profile with native call paths, as the paper observes.
    native = {row.workload: row.time_overhead[PROFILER_DEEPCONTEXT_NATIVE] for row in rows}
    llm_mean = (native["Llama3-8B"] + native["Gemma-7B"] + native["NanoGPT"]) / 3
    others = [value for name, value in native.items()
              if name not in ("Llama3-8B", "Gemma-7B", "NanoGPT")]
    assert llm_mean >= sum(others) / len(others) * 0.8

    # Cross-platform: the same profiler ran unmodified on the AMD device model.
    assert {row.device for row in amd_rows} == {"mi250"}
