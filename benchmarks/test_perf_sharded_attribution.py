"""Sharded CCT attribution — contention-free multi-thread collection.

Microbenchmark for the per-thread shard model: every simulated thread
attributes observations into its own ``CallingContextTree`` shard, so the
per-observation cost must stay flat as the thread count grows — there is no
shared structure on the hot path, only thread-local exclusive Welford
updates.  The merge cost (structural union + parallel Welford combine) is
paid once, lazily, at query time, and is reported separately.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_sharded_attribution.py \
        --benchmark-only -q -s -m perf

(Tier-1 skips ``perf``-marked benchmarks via ``addopts``; the explicit
``-m perf`` on the command line overrides that.)
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Tuple

import pytest

from conftest import print_block

from repro.core import CallingContextTree, ShardedCallingContextTree
from repro.core import metrics as M
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)

THREAD_COUNTS = (1, 2, 4, 8)
CONTEXTS_PER_THREAD = 24
DEPTH = 32
TOTAL_OBSERVATIONS = 48_000

#: One GPU activity record's worth of metrics (what ``_on_activity`` folds).
RECORD_METRICS = {
    M.METRIC_GPU_TIME: 1.25e-4,
    M.METRIC_KERNEL_COUNT: 1.0,
    M.METRIC_BLOCKS: 128.0,
    M.METRIC_THREADS_PER_BLOCK: 256.0,
}


def thread_paths(tid: int, contexts: int = CONTEXTS_PER_THREAD,
                 depth: int = DEPTH) -> List[CallPath]:
    """Per-thread call paths sharing a long Python prefix, as real traces do."""
    prefix = [root_frame("sharded-throughput"), thread_frame(f"thread-{tid}", tid)]
    prefix += [python_frame("train.py", 10 + level, f"fn_{level}")
               for level in range(depth)]
    return [
        CallPath.of(prefix + [framework_frame(f"aten::op_{index % 8}"),
                              gpu_kernel_frame(f"t{tid}_kernel_{index}")])
        for index in range(contexts)
    ]


def attribution_seconds(threads: int) -> Tuple[float, ShardedCallingContextTree]:
    """Wall seconds spent purely attributing TOTAL_OBSERVATIONS observations.

    Leaves are inserted up front (the steady state of a training loop: every
    context exists after the first iteration) and observations round-robin
    across the per-thread shards, modelling interleaved thread activity.
    """
    tree = ShardedCallingContextTree("sharded-throughput")
    leaves = []
    for tid in range(1, threads + 1):
        shard = tree.shard_for_tid(tid, thread_name=f"thread-{tid}")
        leaves.extend((shard, shard.insert(path)) for path in thread_paths(tid))
    rounds = TOTAL_OBSERVATIONS // len(leaves)
    started = time.perf_counter()
    for _ in range(rounds):
        for shard, leaf in leaves:
            shard.attribute_many(leaf, RECORD_METRICS)
    return time.perf_counter() - started, tree


@pytest.mark.perf
def test_sharded_attribution_cost_independent_of_thread_count(benchmark):
    # Re-measure on a failing ratio: wall-clock comparisons on a loaded
    # machine can catch one configuration in a noisy slice.
    for _attempt in range(3):
        per_observation: Dict[int, float] = {}
        for threads in THREAD_COUNTS:
            seconds, _ = attribution_seconds(threads)
            rounds = TOTAL_OBSERVATIONS // (threads * CONTEXTS_PER_THREAD)
            observations = rounds * threads * CONTEXTS_PER_THREAD
            per_observation[threads] = seconds / observations
        spread = max(per_observation.values()) / min(per_observation.values())
        if spread <= 2.0:
            break

    benchmark.pedantic(attribution_seconds, args=(max(THREAD_COUNTS),),
                       rounds=3, iterations=1, warmup_rounds=0)

    # Merge cost is paid once at query time, not per observation.
    _, tree = attribution_seconds(max(THREAD_COUNTS))
    merge_started = time.perf_counter()
    merged = tree.merged()
    merge_seconds = time.perf_counter() - merge_started

    results = {
        "benchmark": "sharded_attribution",
        "total_observations": TOTAL_OBSERVATIONS,
        "contexts_per_thread": CONTEXTS_PER_THREAD,
        "ns_per_observation": {threads: cost * 1e9
                               for threads, cost in per_observation.items()},
        "cost_spread_max_over_min": spread,
        "merge_seconds_at_max_threads": merge_seconds,
        "merged_nodes": merged.node_count(),
    }
    benchmark.extra_info.update(results)
    print_block("Sharded CCT attribution (per-thread shards, merge at query time)",
                json.dumps(results, indent=2))

    # Per-observation attribution cost must not grow with the thread count.
    assert spread <= 2.0, (
        f"attribution cost varied {spread:.2f}x across thread counts "
        f"{THREAD_COUNTS}; expected contention-free (flat) cost")


@pytest.mark.perf
def test_sharded_merge_matches_single_tree_totals(benchmark):
    threads = 4
    single = CallingContextTree("sharded-throughput")
    sharded = ShardedCallingContextTree("sharded-throughput")
    for tid in range(1, threads + 1):
        shard = sharded.shard_for_tid(tid, thread_name=f"thread-{tid}")
        for path in thread_paths(tid):
            single.attribute_many(single.insert(path), RECORD_METRICS)
            shard.attribute_many(shard.insert(path), RECORD_METRICS)

    merged = benchmark.pedantic(sharded.merged, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert merged.node_count() == single.node_count()
    assert merged.root.inclusive.sum(M.METRIC_GPU_TIME) == pytest.approx(
        single.root.inclusive.sum(M.METRIC_GPU_TIME), rel=1e-9)
    assert sharded.aggregate_by_name(metric=M.METRIC_GPU_TIME) == pytest.approx(
        single.aggregate_by_name(metric=M.METRIC_GPU_TIME))
