"""Profile storage engine I/O — save/load wall time and first-query latency.

Microbenchmark for the pluggable storage backends on a large multi-shard
profile (~50k nodes across 4 per-thread shards, several metric columns per
node).  Three numbers matter per backend:

* **save** — serialize the sharded profile to disk;
* **load** — open the file (for the mmap-backed ``cct-binary-v1`` format this
  is one ``mmap`` plus a footer-TOC read, nothing decoded);
* **first query** — open the file *and* answer one query.  Two query shapes
  are measured: a cross-shard ``top_kernels`` (frame tables + one metric
  column per shard on the lazy path) and a single-shard bottom-up aggregation
  (one shard's frame table + one column).

The shape assertion is the paper-style claim the storage refactor was built
for: first-query latency on the binary backend must beat a full
columnar-JSON load by ≥5x, because the lazy view decodes only the
shards/columns the query touches while the JSON backends parse everything up
front.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_profile_io.py \
        --benchmark-only -q -s -m perf

(Tier-1 skips ``perf``-marked benchmarks via ``addopts``; the explicit
``-m perf`` on the command line overrides that.)
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import pytest

from conftest import print_block

from repro.core import (
    FORMAT_BINARY_V1,
    LazyProfileView,
    ProfileDatabase,
    backend_for,
)
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    FrameKind,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)

pytestmark = pytest.mark.perf

SHARDS = 4
STEPS = 125
OPERATORS = 25
KERNELS = 4
# 4 shards × (1 thread + 125 steps + 125×25 ops + 125×25×4 kernels) ≈ 50k.
TARGET_NODES = 50_000

RECORD_METRICS = {
    M.METRIC_GPU_TIME: 1.25e-4,
    M.METRIC_KERNEL_COUNT: 1.0,
    M.METRIC_BLOCKS: 128.0,
    M.METRIC_THREADS_PER_BLOCK: 256.0,
}


def build_profile() -> ProfileDatabase:
    tree = ShardedCallingContextTree("profile-io")
    for tid in range(1, SHARDS + 1):
        shard = tree.shard_for_tid(tid, thread_name=f"thread-{tid}")
        prefix = [root_frame("profile-io"), thread_frame(f"thread-{tid}", tid)]
        for step in range(STEPS):
            step_frame = python_frame("train.py", step, f"step_{step}")
            for op in range(OPERATORS):
                op_frame = framework_frame(f"aten::op_{op}")
                for kernel in range(KERNELS):
                    path = CallPath.of(prefix + [
                        step_frame, op_frame,
                        gpu_kernel_frame(f"kernel_{op}_{kernel}"),
                    ])
                    node = shard.insert(path)
                    shard.attribute_many(node, RECORD_METRICS)
    return ProfileDatabase(tree)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def best_of(trials: int, func):
    """Minimum wall time over ``trials`` runs (first-query latency is a
    cold-path number; the minimum strips scheduler/GC noise on shared
    machines).  Returns (seconds, last result)."""
    best, result = float("inf"), None
    for _trial in range(trials):
        seconds, result = timed(func)
        best = min(best, seconds)
    return best, result


class TestProfileIo:
    def test_save_load_and_first_query_latency(self, once, tmp_path):
        import gc

        database = build_profile()
        stored_nodes = database.tree.stored_node_count()
        assert stored_nodes >= TARGET_NODES

        rows: Dict[str, Dict[str, float]] = {}
        paths = {}
        for format_name in ("columnar-json", "cct-binary-v1"):
            path = str(tmp_path / f"profile.{format_name}")
            save_seconds, _ = timed(lambda: database.save(path, format=format_name))
            paths[format_name] = path
            rows[format_name] = {
                "save_s": save_seconds,
                "file_mb": os.path.getsize(path) / 1e6,
            }
        expected_top = database.top_kernels(10)
        del database  # keep the measured heap small: files are the fixture now
        gc.collect()
        gc.disable()  # GC pauses over a large live heap would swamp the timings
        try:
            # Full columnar-JSON load: parses every shard and every column.
            columnar_load_seconds, columnar_db = best_of(
                2, lambda: ProfileDatabase.load(paths["columnar-json"]))
            rows["columnar-json"]["load_s"] = columnar_load_seconds
            columnar_query_seconds, columnar_top = timed(
                lambda: columnar_db.top_kernels(10))
            rows["columnar-json"]["first_query_s"] = (columnar_load_seconds
                                                      + columnar_query_seconds)
            assert columnar_top == expected_top
            del columnar_db
            gc.collect()

            # Binary open: mmap + TOC only.
            binary_open_seconds, binary_db = best_of(
                3, lambda: ProfileDatabase.load(paths["cct-binary-v1"]))
            assert isinstance(binary_db.tree, LazyProfileView)
            rows["cct-binary-v1"]["load_s"] = binary_open_seconds

            # Cross-shard first query on a fresh mapping: every shard's frame
            # table plus the GPU-time column, but no merged tree.
            def cross_shard_first_query():
                loaded = ProfileDatabase.load(paths["cct-binary-v1"])
                return loaded, loaded.top_kernels(10)

            binary_first_seconds, (binary_db, binary_top) = best_of(
                3, cross_shard_first_query)
            rows["cct-binary-v1"]["first_query_s"] = binary_first_seconds
            assert binary_top == expected_top
            assert not binary_db.tree.hydrated  # no merged tree was built

            # Single-shard first query on a fresh mapping: one shard's frame
            # table plus one metric column.
            def single_shard_first_query():
                view = ProfileDatabase.load(paths["cct-binary-v1"]).tree
                view.shard_aggregate_by_name(1, kind=FrameKind.GPU_KERNEL,
                                             metric=M.METRIC_GPU_TIME)
                return view

            shard_seconds, shard_view = best_of(3, single_shard_first_query)
            rows["cct-binary-v1"]["shard_query_s"] = shard_seconds
            assert shard_view.decoded_shard_ids() == {1}
            assert shard_view.decoded_columns() == {(1, M.METRIC_GPU_TIME)}
        finally:
            gc.enable()

        report = {
            "nodes": stored_nodes,
            "shards": SHARDS,
            "backends": rows,
            "speedup_shard_first_query_vs_columnar_load":
                columnar_load_seconds / rows["cct-binary-v1"]["shard_query_s"],
            "speedup_cross_shard_first_query_vs_columnar_load":
                columnar_load_seconds / rows["cct-binary-v1"]["first_query_s"],
        }
        once(lambda: None)  # record the run under pytest-benchmark
        print_block("profile storage I/O (50k-node, 4-shard profile)",
                    json.dumps(report, indent=2))

        # Shape assertions.  The headline claim: a single-shard first query —
        # open the profile, decode one shard's frame table plus one metric
        # column — beats even a bare full columnar-JSON load by ≥5x.  The
        # cross-shard first query still decodes every shard's frames (one
        # column each), so it wins by a smaller factor.
        assert rows["cct-binary-v1"]["shard_query_s"] * 5 <= columnar_load_seconds
        assert rows["cct-binary-v1"]["first_query_s"] * 1.5 <= columnar_load_seconds
        # Opening the mapping is near-instant compared to a JSON parse.
        assert binary_open_seconds * 20 <= columnar_load_seconds


class TestChecksumOverhead:
    def test_checksummed_io_within_budget_of_unchecksummed(self, once,
                                                           tmp_path):
        """Durability guard: per-block CRC-32 must cost ≤15% on the full
        save + lazily-verified-read cycle of the 50k-node profile.

        The read arm touches every block — the meta block at open, every
        shard's frame table through the names-only rollup, and every metric
        column through the totals — so each fresh view verifies each CRC
        exactly once, which is the worst case for the checksummed file.
        """
        database = build_profile()
        backend = backend_for(FORMAT_BINARY_V1)

        def roundtrip(path: str, checksums: bool) -> None:
            backend.save(database, path, checksums=checksums)
            with backend.open(path) as view:
                for metric in view.metric_names():
                    view.total_metric(metric)
                view.column_aggregate_by_name(kind=FrameKind.GPU_KERNEL,
                                              metric=M.METRIC_GPU_TIME)

        plain_path = str(tmp_path / "plain.cctb")
        checked_path = str(tmp_path / "checked.cctb")
        roundtrip(plain_path, False)  # warm the code paths before timing
        plain_seconds, _ = best_of(3, lambda: roundtrip(plain_path, False))
        checked_seconds, _ = best_of(3, lambda: roundtrip(checked_path, True))
        ratio = checked_seconds / plain_seconds

        once(lambda: None)  # record the run under pytest-benchmark
        print_block("per-block checksum overhead (50k-node profile)",
                    json.dumps({
                        "unchecksummed_roundtrip_s": plain_seconds,
                        "checksummed_roundtrip_s": checked_seconds,
                        "ratio": ratio,
                    }, indent=2))
        assert ratio <= 1.15, (
            f"checksummed save + verified read took {ratio:.2f}x the "
            f"unchecksummed cycle (budget 1.15x)")
