"""Fleet aggregation — lazy cross-run queries vs eager load-and-merge.

Microbenchmark for the fleet subsystem's headline claim: answering a
fleet-wide ``top_kernels`` over many stored runs from **lazy column sums**
(one frame table + one metric column per shard, per run; no tree ever
hydrated) must beat **eagerly** loading every run's profile, merging all the
trees into a fleet CCT and aggregating there, by ≥5x.

The fixture is a store of 8 ingested runs (2 shards × ~6k nodes × 6 metric
columns each — ~50k stored nodes fleet-wide, the same scale as the storage
I/O benchmark).  The eager path pays for decoding every metric column of
every shard plus ~50k ``merge_from`` node unions; the lazy path decodes
exactly the frame tables and the one GPU-time column it needs.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_fleet.py \
        --benchmark-only -q -s -m perf

(Tier-1 skips ``perf``-marked benchmarks via ``addopts``; the explicit
``-m perf`` on the command line overrides that.)
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import print_block

from repro.core import ProfileDatabase, ProfileMetadata
from repro.core import metrics as M
from repro.core.cct import CallingContextTree, ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import ProfileStore

pytestmark = pytest.mark.perf

RUNS = 8
SHARDS = 2
STEPS = 25
OPERATORS = 15
KERNELS = 4
# Per run: 2 shards × (1 thread + 25 steps + 25×15 ops + 25×15×4 kernels)
# ≈ 6.3k nodes → ~50k stored nodes across the 8-run fleet.

MIN_SPEEDUP = 5.0


def build_run(index: int) -> ProfileDatabase:
    tree = ShardedCallingContextTree("fleet-bench")
    scale = 1.0 + 0.1 * index
    for tid in range(1, SHARDS + 1):
        shard = tree.shard_for_tid(tid, thread_name=f"thread-{tid}")
        prefix = [root_frame("fleet-bench"), thread_frame(f"thread-{tid}", tid)]
        for step in range(STEPS):
            step_frame = python_frame("train.py", step, f"step_{step}")
            for op in range(OPERATORS):
                op_frame = framework_frame(f"aten::op_{op}")
                for kernel in range(KERNELS):
                    path = CallPath.of(prefix + [
                        step_frame, op_frame,
                        gpu_kernel_frame(f"kernel_{op}_{kernel}"),
                    ])
                    node = shard.insert(path)
                    shard.attribute_many(node, {
                        M.METRIC_GPU_TIME: 1.25e-4 * scale,
                        M.METRIC_CPU_TIME: 0.8e-4 * scale,
                        M.METRIC_KERNEL_COUNT: 1.0,
                        M.METRIC_BLOCKS: 128.0,
                        M.METRIC_THREADS_PER_BLOCK: 256.0,
                        M.METRIC_MEMCPY_BYTES: 4096.0,
                    })
    metadata = ProfileMetadata(program="fleet-bench",
                               workload=f"fleet-bench-{index}",
                               device="A100")
    return ProfileDatabase(tree, metadata)


def timed(func):
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def best_of(trials: int, func):
    """Minimum wall time over ``trials`` runs (cold-path latency; the
    minimum strips scheduler/GC noise on shared machines)."""
    best, result = float("inf"), None
    for _trial in range(trials):
        seconds, result = timed(func)
        best = min(best, seconds)
    return best, result


class TestFleetAggregation:
    def test_lazy_fleet_top_kernels_vs_eager_merge(self, once, tmp_path):
        import gc

        store = ProfileStore(tmp_path / "fleet")
        stored_nodes = 0
        for index in range(RUNS):
            record = store.ingest(build_run(index))
            stored_nodes += record.nodes
        run_ids = store.run_ids()
        assert len(run_ids) == RUNS

        def lazy_top_kernels():
            with store.aggregator(run_ids=run_ids) as aggregator:
                top = aggregator.top_kernels(10)
                assert aggregator.hydrated_run_ids == []
                return top

        def eager_top_kernels():
            # What fleet queries cost without the lazy gear: load every run,
            # hydrate every shard (all columns), union everything into one
            # fleet tree, then aggregate there.
            combined = CallingContextTree("fleet-bench")
            for run_id in run_ids:
                tree = ProfileDatabase.load(store.profile_path(run_id)).tree
                hydrated = tree.hydrate()
                for shard in hydrated.shards().values():
                    combined.merge_from(shard)
            totals = combined.aggregate_by_name(
                kind=None, metric=M.METRIC_GPU_TIME)
            del totals
            fleet_total = combined.total_metric(M.METRIC_GPU_TIME) or 1.0
            from repro.dlmonitor.callpath import FrameKind
            kernels = combined.aggregate_by_name(
                kind=FrameKind.GPU_KERNEL, metric=M.METRIC_GPU_TIME)
            ranked = sorted(kernels.items(), key=lambda item: -item[1])[:10]
            return [{"kernel": name, M.METRIC_GPU_TIME: value,
                     "fraction": value / fleet_total}
                    for name, value in ranked]

        gc.collect()
        gc.disable()  # GC pauses over the merged trees would swamp timings
        try:
            eager_seconds, eager_rows = best_of(2, eager_top_kernels)
            lazy_seconds, lazy_rows = best_of(3, lazy_top_kernels)
        finally:
            gc.enable()

        # Same answer either way (summation orders differ, so approx).
        assert [row["kernel"] for row in lazy_rows] == \
            [row["kernel"] for row in eager_rows]
        for lazy_row, eager_row in zip(lazy_rows, eager_rows):
            assert lazy_row[M.METRIC_GPU_TIME] == pytest.approx(
                eager_row[M.METRIC_GPU_TIME])

        speedup = eager_seconds / lazy_seconds
        once(lambda: None)  # record the run under pytest-benchmark
        print_block(
            f"fleet top_kernels over {RUNS} stored runs "
            f"({stored_nodes} nodes fleet-wide)",
            json.dumps({
                "runs": RUNS,
                "stored_nodes": stored_nodes,
                "lazy_column_sums_s": lazy_seconds,
                "eager_load_and_merge_s": eager_seconds,
                "speedup": speedup,
            }, indent=2))

        assert speedup >= MIN_SPEEDUP, (
            f"lazy fleet top_kernels must be ≥{MIN_SPEEDUP}x faster than "
            f"eagerly loading and merging all {RUNS} trees, got "
            f"{speedup:.1f}x ({lazy_seconds * 1e3:.2f} ms vs "
            f"{eager_seconds * 1e3:.2f} ms)")
