"""Figure 9 — the top-down view of the Transformer-Big workload.

The top-down flame graph shows the ``loss_fn`` frame invoking three distinct
small kernels (softmax, copy, nll_loss) with the same number of invocations —
the pattern the kernel-fusion analysis turns into case study 6.3.  The view
also carries the launch metrics (register usage) the paper uses to argue the
fusion is safe.
"""

from conftest import print_block

from repro.analyzer import KernelFusionAnalysis
from repro.core import metrics as M
from repro.dlmonitor.callpath import FrameKind
from repro.experiments import PROFILER_DEEPCONTEXT_NATIVE, run_workload
from repro.gui import FlameGraphBuilder
from repro.workloads import create_workload


def build_top_down():
    result = run_workload(create_workload("transformer_big", small=True), device="a100",
                          profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)
    graph = FlameGraphBuilder().top_down(result.database.tree)
    return result, graph


def test_figure9_top_down_view(once):
    result, graph = once(build_top_down)
    tree = result.database.tree

    loss_scopes = [node for node in tree.scopes if node.frame.name == "loss_fn"]
    assert loss_scopes, "the loss_fn scope is missing from the CCT"
    loss_node = max(loss_scopes, key=lambda node: node.inclusive.sum(M.METRIC_GPU_TIME))

    kernels_under_loss = {}
    for node in tree.nodes():
        if node.kind != FrameKind.GPU_KERNEL:
            continue
        if any(ancestor.node_id == loss_node.node_id for ancestor in node.ancestors()):
            name = node.frame.name
            kernels_under_loss.setdefault(name, 0)
            kernels_under_loss[name] += int(node.exclusive.sum(M.METRIC_KERNEL_COUNT))

    lines = [f"loss_fn inclusive GPU time: {loss_node.inclusive.sum(M.METRIC_GPU_TIME) * 1e3:.3f} ms",
             "kernels under loss_fn:"]
    lines += [f"  {name:55s} x{count}" for name, count in sorted(kernels_under_loss.items())]
    print_block("Figure 9: top-down view of Transformer-Big (loss_fn)", "\n".join(lines))

    # Three kinds of small kernels, invoked the same number of times each.
    assert any("softmax" in name for name in kernels_under_loss)
    assert any("copy" in name for name in kernels_under_loss)
    assert any("nll_loss" in name for name in kernels_under_loss)
    counts = {name: count for name, count in kernels_under_loss.items()
              if "softmax" in name or "copy" in name or "nll_loss" in name}
    assert len(set(counts.values())) == 1, f"unequal invocation counts: {counts}"

    # Register usage is attributed, so the fusion suggestion can reason about it.
    registers = loss_node.inclusive.get(M.METRIC_REGISTERS)
    assert registers is not None and registers.mean < 64

    # The kernel-fusion analysis flags the loss_fn region in this profile.
    issues = KernelFusionAnalysis(gpu_threshold_seconds=200e-6).analyze(tree)
    assert any("loss" in issue.node_name.lower() for issue in issues) or issues

    # The top-down flame graph mirrors the CCT and finds loss_fn on some path.
    assert graph.view == "top_down"
    assert graph.root.find("loss_fn")
