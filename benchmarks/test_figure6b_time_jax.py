"""Figure 6(b) — time overhead of JAX(-mode, JIT-compiled) workloads."""

from conftest import print_block

from repro.experiments import (
    MODE_JIT,
    PROFILER_DEEPCONTEXT,
    PROFILER_DEEPCONTEXT_NATIVE,
    PROFILER_FRAMEWORK,
    format_overhead_rows,
    median_overheads,
    overhead_sweep,
)

# All ten workloads run in JIT mode; keep the sweep identical to Figure 6(a)
# but in the JAX-like execution mode.
JIT_WORKLOADS = ("conformer", "dlrm", "unet", "gnn", "resnet", "vit",
                 "transformer_big", "llama3", "gemma", "nanogpt")


def test_figure6b_time_overhead_jax_mode(once):
    rows = once(overhead_sweep, JIT_WORKLOADS, "a100", MODE_JIT, 2, True)
    amd_rows = overhead_sweep(["unet", "gnn"], device="mi250", mode=MODE_JIT,
                              iterations=2, small=True)
    print_block("Figure 6(b): time overhead, JAX (JIT) mode, Nvidia A100",
                format_overhead_rows(rows, which="time"))
    print_block("Figure 6(b): time overhead, JAX (JIT) mode, AMD MI250 (subset)",
                format_overhead_rows(amd_rows, which="time"))

    assert len(rows) == len(JIT_WORKLOADS)
    medians = median_overheads(rows, which="time")
    assert medians[PROFILER_DEEPCONTEXT] > 0.9
    assert medians[PROFILER_DEEPCONTEXT_NATIVE] >= medians[PROFILER_DEEPCONTEXT] * 0.95
    assert medians[PROFILER_FRAMEWORK] <= medians[PROFILER_DEEPCONTEXT_NATIVE]

    # JIT mode launches fewer kernels than eager mode for the same model, so
    # absolute baseline times stay small; overheads remain bounded.
    assert all(row.time_overhead[PROFILER_DEEPCONTEXT_NATIVE] < 50 for row in rows)
