"""§6.6 — JAX vs PyTorch: JIT compilation launches fewer kernels and wins.

The paper compares the two frameworks on DLRM, U-Net, GNN and ResNet and finds
the JAX (XLA-fused) versions consistently faster with fewer kernel launches.
The simulated XLA fusion removes intermediate memory traffic and per-kernel
fixed overhead, so the same ordering holds here (the exact factor is smaller
than the paper's >50% because only elementwise-adjacent fusion is modelled).
"""

from conftest import print_block

from repro.experiments import jax_vs_pytorch


def test_section66_jax_vs_pytorch(once):
    rows = once(jax_vs_pytorch, ("dlrm", "unet", "gnn", "resnet"), "a100", 2, True)

    lines = [f"{'workload':10s} {'eager kernels':>14s} {'jit kernels':>12s} "
             f"{'eager GPU ms':>13s} {'jit GPU ms':>11s} {'speedup':>8s}"]
    for row in rows:
        lines.append(
            f"{row['workload']:10s} {int(row['eager_kernels']):14d} {int(row['jit_kernels']):12d} "
            f"{row['eager_gpu_seconds'] * 1e3:13.2f} {row['jit_gpu_seconds'] * 1e3:11.2f} "
            f"{row['speedup']:7.2f}x")
    print_block("Section 6.6: JAX (JIT) vs PyTorch (eager)", "\n".join(lines))

    assert len(rows) == 4
    for row in rows:
        # JIT always launches fewer kernels (operator fusion)...
        assert row["jit_kernels"] < row["eager_kernels"]
        assert row["kernel_reduction"] > 0.15
        # ...and is at least as fast in GPU time on every workload.
        assert row["speedup"] >= 1.0
    # At least one workload shows a substantial (>30%) improvement.
    assert max(row["speedup"] for row in rows) > 1.3
