"""Figure 4 — mapping fused JIT operators back to their original operators.

DLMonitor intercepts the compiler's fusion pass and records, for every fused
executable, which original operators it was built from together with their
compile-time Python call paths, so the GUI can display all possible source
locations for a runtime call path.
"""

from conftest import print_block

from repro.core import DeepContextProfiler, ProfilerConfig
from repro.framework import EagerEngine
from repro.framework.jit import JitCompiler, jit
from repro.workloads import create_workload


def profile_jitted_workload(name: str = "transformer_big"):
    engine = EagerEngine("a100")
    compiler = JitCompiler(engine)
    config = ProfilerConfig.without_native()
    config.program_name = "figure4"
    profiler = DeepContextProfiler(engine, config, jit_compiler=compiler)
    workload = create_workload(name, small=True)
    with engine, profiler.profile():
        workload.build(engine)
        compiled = jit(workload.step_fn(engine), engine=engine,
                       with_grad=workload.training, compiler=compiler)
        for iteration in range(2):
            compiled(*workload.make_batch(engine, iteration))
        engine.synchronize()
    return profiler, compiled


def test_figure4_fused_operator_mapping(once):
    profiler, compiled = once(profile_jitted_workload)
    fusion_map = profiler.monitor.fusion_map

    lines = []
    for record in fusion_map.records[:6]:
        lines.append(f"{record.fused_name}")
        lines.append(f"    originals: {', '.join(record.original_names)}")
        for original in record.originals[:2]:
            if original.compile_time_callpath:
                file, line, function = original.compile_time_callpath[-1]
                lines.append(f"    {original.op_name} <- {function}:{line}")
    print_block("Figure 4: fused -> original operator mapping", "\n".join(lines))

    # The compiler fused something, and every fused group maps to >= 2 originals.
    assert len(fusion_map) > 0
    assert compiled.graph is not None and compiled.graph.fused_groups()
    for record in fusion_map.records:
        assert len(record.originals) >= 2
        # Compile-time Python call paths point at workload (user) code: the
        # innermost frame of each original operator lives in repro/workloads.
        assert any(original.compile_time_callpath for original in record.originals)
        for original in record.originals:
            if original.compile_time_callpath:
                innermost_file = original.compile_time_callpath[-1][0]
                assert "workloads" in innermost_file

    # Runtime executable nodes are fewer than original operators (fusion happened).
    assert compiled.graph.num_executable < compiled.graph.num_operators
