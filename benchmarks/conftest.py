"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it measures the
relevant operation with ``pytest-benchmark`` (so ``--benchmark-only`` runs the
whole harness), prints the regenerated rows/series, and asserts the *shape* of
the result — who wins, by roughly what factor — rather than absolute numbers,
since the substrate is a simulator rather than the authors' testbed.
"""

from __future__ import annotations

import pytest


def print_block(title: str, body: str) -> None:
    """Print a clearly delimited block so benchmark output is easy to read."""
    line = "=" * max(20, len(title) + 8)
    print(f"\n{line}\n== {title}\n{line}\n{body}\n")


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark.

    Most experiments here are end-to-end sweeps (seconds each); a single
    measured round keeps the harness fast while still recording timings.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
