"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it measures the
relevant operation with ``pytest-benchmark`` (so ``--benchmark-only`` runs the
whole harness), prints the regenerated rows/series, and asserts the *shape* of
the result — who wins, by roughly what factor — rather than absolute numbers,
since the substrate is a simulator rather than the authors' testbed.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True)
def faultfs_wrap(tmp_path_factory):
    """With ``REPRO_FAULTFS_WRAP=1``, route every benchmark file operation
    through a :class:`~repro.core.faultfs.FaultInjector` holding an *empty*
    fault plan.  Nothing fails — the point is the CI smoke that runs the
    streaming benchmark under the wrapper and shows the harness itself adds
    no measurable overhead when no fault is scripted, so fault-injection
    tests measure the durability machinery, not the harness.
    """
    if os.environ.get("REPRO_FAULTFS_WRAP") != "1":
        yield
        return
    from repro.core.faultfs import FaultInjector, FaultPlan

    with FaultInjector(tmp_path_factory.getbasetemp(), FaultPlan()):
        yield


def print_block(title: str, body: str) -> None:
    """Print a clearly delimited block so benchmark output is easy to read."""
    line = "=" * max(20, len(title) + 8)
    print(f"\n{line}\n== {title}\n{line}\n{body}\n")


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark.

    Most experiments here are end-to-end sweeps (seconds each); a single
    measured round keeps the harness fast while still recording timings.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
