"""Figures 1 & 3 — unified call paths with vs without framework context.

Figure 1 contrasts the hot call path of a convolution backward with and
without framework information; Figure 3 shows the call paths DLMonitor builds
with and without the shim.  This benchmark profiles a ResNet step twice — once
with only native frames (the "w/o DLMonitor" view) and once with the full
integration — and checks that only the latter exposes Python, framework and
kernel frames on the hot backward path.
"""

from conftest import print_block

from repro.core import DeepContextProfiler, ProfilerConfig
from repro.dlmonitor.callpath import FrameKind
from repro.framework import EagerEngine
from repro.workloads import create_workload


def profile_resnet(collect_python: bool, collect_framework: bool):
    engine = EagerEngine("a100")
    config = ProfilerConfig(collect_python=collect_python,
                            collect_framework=collect_framework,
                            collect_native=True, program_name="figure1")
    profiler = DeepContextProfiler(engine, config)
    workload = create_workload("resnet", small=True)
    with engine, profiler.profile():
        workload.build(engine)
        workload.run_iteration(engine, 0)
        engine.synchronize()
    return profiler.database


def hot_backward_kernel(database):
    kernels = [node for node in database.tree.kernels
               if any(ancestor.kind == FrameKind.THREAD and "backward" in ancestor.name
                      for ancestor in node.ancestors())]
    return max(kernels, key=lambda node: node.inclusive.sum("gpu_time"))


def test_figure1_framework_context(once):
    with_context = once(profile_resnet, True, True)
    without_context = profile_resnet(False, False)

    hot_with = hot_backward_kernel(with_context)
    hot_without = hot_backward_kernel(without_context)
    print_block("Figure 1(b): hot backward call path WITH framework context",
                hot_with.callpath().format())
    print_block("Figure 1(a): hot backward call path WITHOUT framework context",
                hot_without.callpath().format())

    kinds_with = set(hot_with.callpath().kinds())
    kinds_without = set(hot_without.callpath().kinds())

    # With DLMonitor: Python + framework + native + GPU API + kernel frames.
    assert FrameKind.PYTHON in kinds_with
    assert FrameKind.FRAMEWORK in kinds_with
    assert FrameKind.NATIVE in kinds_with
    assert FrameKind.GPU_KERNEL in kinds_with
    # Without: only native (and GPU) frames, no Python or framework context.
    assert FrameKind.PYTHON not in kinds_without
    assert FrameKind.FRAMEWORK not in kinds_without
    assert FrameKind.NATIVE in kinds_without
    # The integrated path is strictly deeper (more context per kernel).
    assert hot_with.depth > hot_without.depth
