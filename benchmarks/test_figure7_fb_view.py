"""Figure 7 — forward/backward association view of the DLRM-small workload.

The backward ``indexing_backward_kernel`` runs on a backward thread with no
Python source of its own; DeepContext's sequence-ID association grafts the
forward embedding-lookup context (Python frame in ``dlrm.py`` plus the
``aten::index`` operator) in front of the backward kernel's call path.
"""

from conftest import print_block

from repro.dlmonitor.callpath import FrameKind
from repro.experiments import PROFILER_DEEPCONTEXT_NATIVE, run_workload
from repro.workloads import create_workload


def profile_dlrm():
    return run_workload(create_workload("dlrm", small=True), device="a100",
                        profiler=PROFILER_DEEPCONTEXT_NATIVE, iterations=2)


def test_figure7_forward_backward_association_view(once):
    result = once(profile_dlrm)
    tree = result.database.tree

    backward_index_kernels = [
        node for node in tree.kernels if "indexing_backward" in node.frame.name]
    assert backward_index_kernels, "the deterministic index backward kernel never ran"
    hot = max(backward_index_kernels, key=lambda node: node.inclusive.sum("gpu_time"))
    path = hot.callpath()
    print_block("Figure 7: forward/backward association view (DLRM-small)", path.format())

    # The kernel runs on the backward thread...
    assert any(frame.kind == FrameKind.THREAD and "backward" in frame.name for frame in path)
    # ...yet its call path contains the *forward* Python context (dlrm.py) and
    # the aten::index operator frame, thanks to the sequence-ID association.
    python_files = [frame.file for frame in path.frames_of_kind(FrameKind.PYTHON)]
    assert any(file.endswith("dlrm.py") for file in python_files)
    framework_names = [frame.name for frame in path.frames_of_kind(FrameKind.FRAMEWORK)]
    assert "aten::index" in framework_names

    # And the backward share of aten::index dwarfs its forward share, the
    # observation that drives case study 6.1 (paper: 39.9% vs 0.8%).
    forward_gather = sum(node.exclusive.sum("gpu_time") for node in tree.kernels
                         if "index_elementwise" in node.frame.name)
    backward_scatter = sum(node.exclusive.sum("gpu_time") for node in tree.kernels
                           if "indexing_backward" in node.frame.name)
    assert backward_scatter > 10 * max(forward_gather, 1e-12)
