"""Telemetry overhead — the observability layer must be near-free.

PR 9 threaded ``repro.obs`` guards through every hot seam (streaming
seals, block decodes, catalog locks, fleet queries).  This benchmark
gates the promise that instrumentation never becomes the workload:

* **enabled** — recording counters, histograms and spans while running
  a streaming-checkpoint loop and a fleet-query sweep must cost at most
  **1.10x** the same work with telemetry off;
* **disabled** (the default) — each untaken seam costs one attribute
  check.  Measured per-guard cost times the number of guard hits the
  enabled run actually recorded must stay under **2%** of the disabled
  runtime (the ≤1.02x budget), so shipping the instrumentation does not
  tax users who never turn it on.

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_telemetry.py \
        --benchmark-only -q -s -m perf
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import print_block

from repro.core import ProfileDatabase, StreamingProfileWriter
from repro.core import metrics as M
from repro.core.cct import ShardedCallingContextTree
from repro.dlmonitor.callpath import (
    CallPath,
    framework_frame,
    gpu_kernel_frame,
    python_frame,
    root_frame,
    thread_frame,
)
from repro.fleet import ProfileStore
from repro.obs import TELEMETRY

pytestmark = pytest.mark.perf

SHARDS = 4
STEPS = 40
OPERATORS = 20
KERNELS = 4
# 4 shards × (1 + 40 + 40×20 + 40×20×4) ≈ 16k nodes: big enough that the
# measured seconds dominate scheduler noise, small enough to stay quick.

RECORD_METRICS = {
    M.METRIC_GPU_TIME: 1.25e-4,
    M.METRIC_KERNEL_COUNT: 1.0,
}

#: Enabled recording may cost at most this much on macro workloads.
ENABLED_BUDGET = 1.10
#: Disabled guards may cost at most this fraction of the runtime.
DISABLED_BUDGET = 0.02

TRIALS = 3


def build_profile(name: str) -> ProfileDatabase:
    tree = ShardedCallingContextTree(name)
    for tid in range(1, SHARDS + 1):
        shard = tree.shard_for_tid(tid, thread_name=f"thread-{tid}")
        prefix = [root_frame(name), thread_frame(f"thread-{tid}", tid)]
        for step in range(STEPS):
            step_frame = python_frame("train.py", step, f"step_{step}")
            for op in range(OPERATORS):
                op_frame = framework_frame(f"aten::op_{op}")
                for kernel in range(KERNELS):
                    path = CallPath.of(prefix + [
                        step_frame, op_frame,
                        gpu_kernel_frame(f"kernel_{op}_{kernel}"),
                    ])
                    node = shard.insert(path)
                    shard.attribute_many(node, RECORD_METRICS)
    return ProfileDatabase(tree)


def timed_best(func, trials: int = TRIALS) -> float:
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def streaming_shape(tmp_path, label: str):
    """One checkpoint-reseal pass over a fresh streamed profile."""
    database = build_profile(f"telemetry-perf-{label}")
    writer = StreamingProfileWriter(database,
                                    str(tmp_path / f"{label}.cctb"))

    def run():
        writer.checkpoint()
        shard = database.tree.shard_for_tid(1)
        for node in shard.kernels[::16]:
            shard.attribute_many(node, RECORD_METRICS)
        writer.checkpoint()

    return run


def fleet_shape(tmp_path, label: str):
    """Fleet-query sweep over a two-run store (ingest done in setup)."""
    store = ProfileStore(str(tmp_path / f"fleet-{label}"))
    for run in range(2):
        database = build_profile(f"telemetry-perf-{label}-{run}")
        database.metadata.workload = "telemetry-perf"
        store.ingest(database)

    def run():
        # A realistic fleet pass: one aggregator, a materializing merge,
        # then an index-query sweep.  The merge gives the pass enough
        # substance that per-span cost amortizes below the gate.
        with store.aggregator(workload="telemetry-perf") as aggregator:
            aggregator.merged_tree()
            for _ in range(10):
                aggregator.total_metric(M.METRIC_GPU_TIME)
                aggregator.top_kernels(k=10)
                aggregator.aggregate_by_name(metric=M.METRIC_GPU_TIME)

    return run


def counted_telemetry_calls(run) -> int:
    """Run once with telemetry on, counting every registry call.

    Each instrumented seam makes at most a handful of registry calls per
    guard evaluation, so the call count is a (conservative) upper bound
    on how many ``TELEMETRY.enabled`` checks the disabled path performs.
    """
    calls = 0
    originals = (TELEMETRY.count, TELEMETRY.observe, TELEMETRY.span,
                 TELEMETRY.gauge_set, TELEMETRY.gauge_add)

    def counting(original):
        def wrapper(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)
        return wrapper

    TELEMETRY.reset()
    TELEMETRY.enable()
    TELEMETRY.count, TELEMETRY.observe, TELEMETRY.span = (
        counting(originals[0]), counting(originals[1]),
        counting(originals[2]))
    TELEMETRY.gauge_set, TELEMETRY.gauge_add = (counting(originals[3]),
                                                counting(originals[4]))
    try:
        run()
    finally:
        (TELEMETRY.count, TELEMETRY.observe, TELEMETRY.span,
         TELEMETRY.gauge_set, TELEMETRY.gauge_add) = originals
        TELEMETRY.disable()
        TELEMETRY.reset()
    return calls


def per_guard_seconds() -> float:
    """Cost of one disabled ``TELEMETRY.enabled`` check, best of trials."""
    iterations = 200_000
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        for _ in range(iterations):
            if TELEMETRY.enabled:  # pragma: no cover - never taken
                TELEMETRY.count("never")
        best = min(best, time.perf_counter() - start)
    return best / iterations


class TestTelemetryOverhead:
    @pytest.mark.parametrize("shape", ["streaming", "fleet"])
    def test_enabled_and_disabled_budgets(self, shape, once, tmp_path):
        factory = streaming_shape if shape == "streaming" else fleet_shape
        TELEMETRY.disable()
        TELEMETRY.reset()

        disabled_run = factory(tmp_path, f"{shape}-disabled")
        disabled_run()  # warm caches/allocators outside the measurement
        disabled_seconds = timed_best(disabled_run)

        enabled_run = factory(tmp_path, f"{shape}-enabled")
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            enabled_run()  # warm-up, symmetric with the disabled shape
            enabled_seconds = timed_best(enabled_run)
            spans_recorded = TELEMETRY.snapshot()["spans"]["recorded"]
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

        guard_hits = counted_telemetry_calls(
            factory(tmp_path, f"{shape}-counted"))
        guard_seconds = per_guard_seconds()
        disabled_fraction = (guard_hits * guard_seconds
                             / max(disabled_seconds, 1e-12))

        enabled_ratio = enabled_seconds / disabled_seconds
        report = {
            "shape": shape,
            "disabled_s": disabled_seconds,
            "enabled_s": enabled_seconds,
            "enabled_ratio": enabled_ratio,
            "enabled_budget": ENABLED_BUDGET,
            "guard_hits_per_pass": guard_hits,
            "per_guard_ns": guard_seconds * 1e9,
            "disabled_overhead_fraction": disabled_fraction,
            "disabled_budget": DISABLED_BUDGET,
            "spans_recorded_enabled": spans_recorded,
        }
        once(lambda: None)  # record the run under pytest-benchmark
        print_block(f"telemetry overhead ({shape})",
                    json.dumps(report, indent=2))

        assert spans_recorded > 0, "enabled run must actually record spans"
        # Enabled recording stays within its macro budget.
        assert enabled_ratio <= ENABLED_BUDGET, (
            f"telemetry enabled costs {enabled_ratio:.3f}x on the {shape} "
            f"shape (budget {ENABLED_BUDGET}x)")
        # Disabled guards stay within the ≤1.02x budget.
        assert disabled_fraction <= DISABLED_BUDGET, (
            f"disabled guards cost {disabled_fraction * 100:.2f}% of the "
            f"{shape} runtime (budget {DISABLED_BUDGET * 100:.0f}%)")
